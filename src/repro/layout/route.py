"""Global-routing estimation: wirelength, wire loads, congestion.

After SDP placement the router's job is summarized by three standard
estimates:

* per-net **half-perimeter wirelength** (HPWL) over the placed pin
  positions (cell centers — adequate at the 1.8 um row scale);
* per-net **wire capacitance** ``HPWL * c_wire``, the load handed to
  post-layout STA and power;
* **congestion**: demanded track length over available track length;
  > 1.0 means the uniform routing the SDP style promises is not
  achievable and the floorplan must grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import LayoutError
from ..rtl.ir import Module
from ..tech.process import Process
from ..tech.stdcells import StdCellLibrary
from .geometry import bounding_box
from .sdp import Placement


@dataclass(frozen=True)
class RoutingEstimate:
    """Routing summary for one placed design."""

    total_wirelength_um: float
    net_lengths_um: Dict[str, float]
    net_caps_ff: Dict[str, float]
    congestion: float
    layers_assumed: int = 4

    def wire_load_fn(self) -> Callable[[str], float]:
        """Adapter for :func:`repro.sta.analysis.analyze` and the power
        estimator: net name -> wire capacitance (fF)."""
        caps = self.net_caps_ff

        def load(net: str) -> float:
            return caps.get(net, 0.0)

        return load

    def describe(self) -> str:
        return (
            f"wirelength {self.total_wirelength_um / 1e3:.1f} mm over "
            f"{len(self.net_lengths_um)} nets, congestion "
            f"{self.congestion:.2f}"
        )


def estimate_routing(
    module: Module,
    placement: Placement,
    library: StdCellLibrary,
    process: Process,
) -> RoutingEstimate:
    """HPWL-based routing estimate for a placed flat module."""
    pin_positions: Dict[str, List[Tuple[float, float]]] = {}
    for inst in module.instances:
        rect = placement.cells.get(inst.name)
        if rect is None:
            raise LayoutError(f"instance {inst.name} missing from placement")
        center = rect.center
        for net in inst.conn.values():
            pin_positions.setdefault(net, []).append(center)

    net_lengths: Dict[str, float] = {}
    net_caps: Dict[str, float] = {}
    total = 0.0
    for net, points in pin_positions.items():
        if len(points) < 2:
            net_lengths[net] = 0.0
            net_caps[net] = 0.0
            continue
        box = bounding_box(points)
        length = box.width + box.height
        net_lengths[net] = length
        net_caps[net] = process.wire_cap_ff(length)
        total += length

    # Track supply: `layers` horizontal+vertical layers at the routing
    # pitch across the outline.
    layers = 4
    tracks_h = placement.outline.height / process.track_pitch_um
    tracks_v = placement.outline.width / process.track_pitch_um
    supply = (
        tracks_h * placement.outline.width + tracks_v * placement.outline.height
    ) * (layers / 2.0)
    congestion = total / supply if supply > 0 else float("inf")
    return RoutingEstimate(
        total_wirelength_um=total,
        net_lengths_um=net_lengths,
        net_caps_ff=net_caps,
        congestion=congestion,
        layers_assumed=layers,
    )
