"""Planar geometry primitives for placement, routing and DRC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from ..errors import LayoutError


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle, ``(x0, y0)`` lower-left inclusive."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(f"degenerate rect {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def overlaps(self, other: "Rect", eps: float = 1e-9) -> bool:
        """Strict interior overlap (shared edges do not count)."""
        return (
            self.x0 < other.x1 - eps
            and other.x0 < self.x1 - eps
            and self.y0 < other.y1 - eps
            and other.y0 < self.y1 - eps
        )

    def contains(self, other: "Rect", eps: float = 1e-9) -> bool:
        return (
            self.x0 - eps <= other.x0
            and self.y0 - eps <= other.y0
            and other.x1 <= self.x1 + eps
            and other.y1 <= self.y1 + eps
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def expanded(self, margin: float) -> "Rect":
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )


def bounding_box(points: Iterable[Tuple[float, float]]) -> Rect:
    pts = list(points)
    if not pts:
        raise LayoutError("bounding box of no points")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def half_perimeter(points: Iterable[Tuple[float, float]]) -> float:
    """HPWL of a point set (classic net-length estimate)."""
    box = bounding_box(points)
    return box.width + box.height


def sweep_overlaps(rects: List[Tuple[str, Rect]]) -> Iterator[Tuple[str, str]]:
    """Yield overlapping pairs with a sort-and-sweep over x intervals.

    ``O(n log n + k)`` in practice for row-based placements, which keeps
    DRC tractable on hundred-thousand-cell layouts.
    """
    events = sorted(rects, key=lambda item: item[1].x0)
    active: List[Tuple[str, Rect]] = []
    for name, rect in events:
        still_active: List[Tuple[str, Rect]] = []
        for other_name, other in active:
            if other.x1 > rect.x0 + 1e-9:
                still_active.append((other_name, other))
                if rect.overlaps(other):
                    yield (other_name, name)
        active = still_active
        active.append((name, rect))
