"""Planar geometry primitives for placement, routing and DRC.

Two tiers live here:

* scalar :class:`Rect` objects plus :func:`sweep_overlaps`, the pinned
  reference implementations used by the unit tests and by anything that
  handles a handful of rectangles;
* the vectorized kernels :func:`rect_arrays` / :func:`overlap_pairs`
  that DRC and routing run on whole placements — a grid-binned sweep
  over coordinate arrays that replaces the per-pair
  :meth:`Rect.overlaps` calls (the single hottest loop of the
  implementation flow) while producing the exact pair set, in the exact
  emission order, of the scalar sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from ..errors import LayoutError


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle, ``(x0, y0)`` lower-left inclusive."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(f"degenerate rect {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))

    def overlaps(self, other: "Rect", eps: float = 1e-9) -> bool:
        """Strict interior overlap (shared edges do not count)."""
        return (
            self.x0 < other.x1 - eps
            and other.x0 < self.x1 - eps
            and self.y0 < other.y1 - eps
            and other.y0 < self.y1 - eps
        )

    def contains(self, other: "Rect", eps: float = 1e-9) -> bool:
        return (
            self.x0 - eps <= other.x0
            and self.y0 - eps <= other.y0
            and other.x1 <= self.x1 + eps
            and other.y1 <= self.y1 + eps
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def expanded(self, margin: float) -> "Rect":
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )


def bounding_box(points: Iterable[Tuple[float, float]]) -> Rect:
    pts = list(points)
    if not pts:
        raise LayoutError("bounding box of no points")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def half_perimeter(points: Iterable[Tuple[float, float]]) -> float:
    """HPWL of a point set (classic net-length estimate)."""
    box = bounding_box(points)
    return box.width + box.height


def sweep_overlaps(rects: List[Tuple[str, Rect]]) -> Iterator[Tuple[str, str]]:
    """Yield overlapping pairs with a sort-and-sweep over x intervals.

    ``O(n log n + k)`` in practice for row-based placements.  This is
    the scalar **reference implementation**: :func:`overlap_pairs`
    computes the same pair set (same order) over coordinate arrays and
    is what :mod:`repro.layout.drc` actually runs; the equivalence suite
    in ``tests/test_layout_kernels.py`` pins the two together.
    """
    events = sorted(rects, key=lambda item: item[1].x0)
    active: List[Tuple[str, Rect]] = []
    for name, rect in events:
        still_active: List[Tuple[str, Rect]] = []
        for other_name, other in active:
            if other.x1 > rect.x0 + 1e-9:
                still_active.append((other_name, other))
                if rect.overlaps(other):
                    yield (other_name, name)
        active = still_active
        active.append((name, rect))


# ---------------------------------------------------------------------------
# Vectorized kernels (coordinate-array tier).
# ---------------------------------------------------------------------------


def rect_arrays(cells: Mapping[str, Rect]) -> Tuple[List[str], np.ndarray]:
    """``(names, coords)`` for a name->Rect mapping.

    ``coords`` is an ``(n, 4)`` float64 array of ``x0, y0, x1, y1``
    rows.  Mappings that natively carry their coordinate arrays (the
    placer's lazy cell map) hand them over without materializing any
    :class:`Rect`; plain dicts are converted.
    """
    native = getattr(cells, "coord_arrays", None)
    if native is not None:
        return native()
    names = list(cells)
    coords = np.empty((len(names), 4), dtype=np.float64)
    for i, name in enumerate(names):
        r = cells[name]
        coords[i, 0] = r.x0
        coords[i, 1] = r.y0
        coords[i, 2] = r.x1
        coords[i, 3] = r.y1
    return names, coords


def _expand_runs(starts: np.ndarray, ends: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-row ranges ``[starts[i], ends[i])`` into flat
    ``(row_index, position)`` pair arrays."""
    counts = np.maximum(ends - starts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    positions = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)
    return rows, positions


def overlap_pairs(
    names: List[str], coords: np.ndarray, eps: float = 1e-9
) -> List[Tuple[str, str]]:
    """All strictly-overlapping rectangle pairs, vectorized.

    Produces exactly the pairs (and the emission order) of the scalar
    :func:`sweep_overlaps` reference: pairs come out sorted by the
    x-sorted event rank of the later rectangle, then of the earlier one,
    each pair as ``(earlier_name, later_name)``.

    The sweep is grid-binned: rectangles are assigned to x-columns at
    least as wide as the widest rectangle (so each touches at most two
    columns), candidates inside a column come from a y-sorted interval
    expansion, and the exact overlap predicate is evaluated on the
    candidate arrays in one shot.
    """
    n = len(names)
    if n < 2:
        return []
    x0 = np.ascontiguousarray(coords[:, 0])
    y0 = np.ascontiguousarray(coords[:, 1])
    x1 = np.ascontiguousarray(coords[:, 2])
    y1 = np.ascontiguousarray(coords[:, 3])

    # Event ranks of the scalar sweep: stable sort by x0.
    order = np.argsort(x0, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)

    # X-columns: at least as wide as the widest rect (every rect spans
    # at most two columns), at most ~1k columns across the extent.
    min_x = float(x0.min())
    extent = float(x1.max()) - min_x
    bin_w = max(float((x1 - x0).max()), extent / 1024.0, eps)
    b_lo = np.floor((x0 - min_x) / bin_w).astype(np.int64)
    b_hi = np.floor((x1 - min_x) / bin_w).astype(np.int64)

    second = b_hi != b_lo
    entry_rect = np.concatenate([np.arange(n, dtype=np.int64), np.nonzero(second)[0]])
    entry_bin = np.concatenate([b_lo, b_hi[second]])

    # Group entries by column, candidates via y-interval expansion.
    grouping = np.argsort(entry_bin, kind="stable")
    sorted_bins = entry_bin[grouping]
    cuts = np.nonzero(np.diff(sorted_bins))[0] + 1
    group_starts = np.concatenate([[0], cuts])
    group_ends = np.concatenate([cuts, [len(sorted_bins)]])

    cand_a: List[np.ndarray] = []
    cand_b: List[np.ndarray] = []
    for s, e in zip(group_starts, group_ends):
        if e - s < 2:
            continue
        members = entry_rect[grouping[s:e]]
        ys = y0[members]
        local = np.argsort(ys, kind="stable")
        members = members[local]
        ys = ys[local]
        tops = y1[members]
        # For each member i, members i+1..end_i start below i's top.
        run_end = np.searchsorted(ys, tops - eps, side="left")
        rows, cols = _expand_runs(
            np.arange(1, len(members) + 1, dtype=np.int64), run_end
        )
        if len(rows):
            cand_a.append(members[rows])
            cand_b.append(members[cols])
    if not cand_a:
        return []
    a = np.concatenate(cand_a)
    b = np.concatenate(cand_b)

    # Exact predicate (Rect.overlaps semantics) on the candidates.
    keep = (
        (x0[a] < x1[b] - eps)
        & (x0[b] < x1[a] - eps)
        & (y0[a] < y1[b] - eps)
        & (y0[b] < y1[a] - eps)
    )
    a = a[keep]
    b = b[keep]
    if not len(a):
        return []

    ra, rb = rank[a], rank[b]
    lo = np.minimum(ra, rb)
    hi = np.maximum(ra, rb)
    keys = np.unique(hi * n + lo)  # dedupe + scalar emission order
    lo = keys % n
    hi = keys // n
    first = order[lo]
    second_ = order[hi]
    return [(names[i], names[j]) for i, j in zip(first, second_)]
