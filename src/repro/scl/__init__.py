"""Subcircuit library (SCL): PPA lookup tables over topology, dimension
and timing-relevant variants.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline, and ``docs/performance.md`` for the persistent
characterization cache (:mod:`repro.scl.cache`).
"""

from .lut import PPARecord, PPATable, interpolate_records
from .library import KINDS, SubcircuitLibrary, default_scl, default_scl_source
from .builder import build_default_scl, characterize_module, tree_variant
from .cache import (
    load_cached_scl,
    scl_cache_dir,
    scl_cache_enabled,
    scl_cache_key,
    store_cached_scl,
)

__all__ = [
    "PPARecord",
    "PPATable",
    "interpolate_records",
    "KINDS",
    "SubcircuitLibrary",
    "default_scl",
    "default_scl_source",
    "build_default_scl",
    "characterize_module",
    "tree_variant",
    "load_cached_scl",
    "scl_cache_dir",
    "scl_cache_enabled",
    "scl_cache_key",
    "store_cached_scl",
]
