"""Subcircuit library (SCL): PPA lookup tables over topology, dimension
and timing-relevant variants.

See ``docs/architecture.md`` for how this package fits the
spec-to-layout pipeline.
"""

from .lut import PPARecord, PPATable, interpolate_records
from .library import KINDS, SubcircuitLibrary, default_scl
from .builder import build_default_scl, characterize_module, tree_variant

__all__ = [
    "PPARecord",
    "PPATable",
    "interpolate_records",
    "KINDS",
    "SubcircuitLibrary",
    "default_scl",
    "build_default_scl",
    "characterize_module",
    "tree_variant",
]
