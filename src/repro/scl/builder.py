"""Subcircuit-library builder: the characterization flow of Fig. 3.

For every subcircuit kind the builder runs the same loop the paper
describes — *generate the netlist, synthesize (flatten), time it, power
it, measure it* — over a grid of topology variants and dimensions, and
files the resulting :class:`~repro.scl.lut.PPARecord` into the library's
LUTs.  Dimensions between grid points are interpolated at lookup time.

The characterized kinds and their primary dimensions:

==============  ======================  =============================
kind            variant                 dimension
==============  ======================  =============================
adder_tree      style-faN-reorder       number of summed rows
mult_mux        tg_nor/oai22/pg_1t      MCR
shift_adder     k<input_bits>           tree (adder-tree output) width
ofu             c<columns>              S&A word width
fuse_stage      s<shift>                input word width
wl_driver       drv<strength>           array width (wordline load)
bl_driver       drv<strength>           array rows (bitline load)
alignment       <format name>           lanes
memcell         cell name               (per-cell record)
==============  ======================  =============================
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..signoff.corners import Corner as SignoffCorner

from ..errors import LibraryError
from ..power.estimator import estimate_power
from ..rtl.gen.addertree import generate_adder_tree
from ..rtl.gen.alignment import generate_alignment_unit
from ..rtl.gen.drivers import generate_bl_driver, generate_wl_driver
from ..rtl.gen.multiplier import generate_mult_mux
from ..rtl.gen.ofu import OFUConfig, generate_fuse_stage, generate_ofu
from ..rtl.gen.shiftadder import generate_shift_adder
from ..rtl.ir import Module
from ..rtl.netview import net_view
from ..spec import BF16, FP4, FP8, DataFormat
from ..sta.analysis import minimum_period_ns
from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library
from .library import SubcircuitLibrary
from .lut import PPARecord

#: Characterization grids (kept modest: the LUT interpolates between).
TREE_SIZES = (8, 16, 32, 64, 128, 256)
TREE_STYLES: Tuple[Tuple[str, int], ...] = (
    ("rca", 0),
    ("cmp42", 0),
    ("mixed", 1),
    ("mixed", 2),
    ("mixed", 3),
)
MCR_VALUES = (1, 2, 4, 8)
SA_INPUT_BITS = (2, 3, 4, 5, 8, 9, 12, 16)
SA_TREE_WIDTHS = (3, 4, 5, 6, 7, 8, 9)
OFU_COLUMNS = (2, 4, 8, 16)
OFU_WIDTHS = (8, 12, 16, 20, 24)
FUSE_SHIFTS = (1, 2, 4, 8)
FUSE_WIDTHS = (8, 12, 16, 20, 24, 30)
DRIVER_STRENGTHS = (2, 4, 8)
DRIVER_DIMS = (16, 32, 64, 128, 256)
ALIGN_FORMATS = (FP4, FP8, BF16)
ALIGN_LANES = (8, 16, 32, 64)
MEMCELLS = ("DCIM6T", "DCIM8T", "DCIM12T", "RRAM_HYB", "SRAM6T")

#: Reference frequency used to convert power to per-cycle energy.
CHAR_FREQUENCY_MHZ = 1000.0


def grid_fingerprint() -> dict:
    """Canonical description of everything the builder sweeps: part of
    the persistent cache key (see :mod:`repro.scl.cache`), so editing a
    grid or the characterization stats invalidates cached artifacts."""
    return {
        "tree_sizes": list(TREE_SIZES),
        "tree_styles": [list(s) for s in TREE_STYLES],
        "mcr_values": list(MCR_VALUES),
        "sa_input_bits": list(SA_INPUT_BITS),
        "sa_tree_widths": list(SA_TREE_WIDTHS),
        "ofu_columns": list(OFU_COLUMNS),
        "ofu_widths": list(OFU_WIDTHS),
        "fuse_shifts": list(FUSE_SHIFTS),
        "fuse_widths": list(FUSE_WIDTHS),
        "driver_strengths": list(DRIVER_STRENGTHS),
        "driver_dims": list(DRIVER_DIMS),
        "align_formats": [
            [f.name, f.kind, f.bits, f.exponent, f.mantissa]
            for f in ALIGN_FORMATS
        ],
        "align_lanes": list(ALIGN_LANES),
        "memcells": list(MEMCELLS),
        "char_frequency_mhz": CHAR_FREQUENCY_MHZ,
        "char_port_stats": [
            [prefix, list(stats)] for prefix, stats in CHAR_PORT_STATS
        ],
    }


#: Workload-representative port statistics used during characterization
#: (prefix -> (one-probability, transition density)).  Product bits of a
#: half-sparse MAC toggle far less than the 0.5/0.5 default; weights are
#: quasi-static.  Keeping these in one table makes the SCL numbers agree
#: with full-macro power analysis under the same workload.
CHAR_PORT_STATS: Tuple[Tuple[str, Tuple[float, float]], ...] = (
    ("in[", (0.25, 0.25)),       # adder-tree product inputs
    ("xb", (0.5, 0.5)),          # serial input complements
    ("wb", (0.5, 0.0)),          # stored weights: static during MAC
    ("sel", (0.5, 0.0)),
    ("t[", (0.4, 0.35)),         # tree sums into the S&A
    ("a", (0.5, 0.35)),          # S&A words into the OFU
    ("lo[", (0.5, 0.35)),
    ("hi[", (0.5, 0.35)),
    ("sub", (0.2, 0.0)),
    ("neg", (0.2, 0.25)),
    ("clear", (0.2, 0.25)),
    ("we", (0.9, 0.05)),
    ("x[", (0.5, 0.5)),
    ("d[", (0.5, 0.25)),
    ("fp", (0.5, 0.5)),
)


#: Port-name -> NetActivity-or-None resolution cache (port names repeat
#: heavily across characterized modules: ``in[3]``, ``x[7]``, ...).
_PORT_STAT_CACHE: dict = {}
_PORT_STAT_MISS = object()


def _char_input_stats(module: Module):
    from ..power.activity import NetActivity

    stats = {}
    cache_get = _PORT_STAT_CACHE.get
    for net in module.input_ports:
        hit = cache_get(net, _PORT_STAT_MISS)
        if hit is _PORT_STAT_MISS:
            hit = None
            for prefix, (p, d) in CHAR_PORT_STATS:
                if net.startswith(prefix):
                    hit = NetActivity(p, d)
                    break
            _PORT_STAT_CACHE[net] = hit
        if hit is not None:
            stats[net] = hit
    return stats


def characterize_module(
    module: Module,
    library: StdCellLibrary,
    process: Process,
    stage_delays: Tuple[float, ...] = (),
    corner: Optional["SignoffCorner"] = None,
) -> PPARecord:
    """Flatten + STA + power + area for one generated subcircuit.

    With ``corner`` (a :class:`repro.signoff.Corner`), timing runs with
    the corner's composed derate inside the STA — a real corner
    characterization, not a post-hoc scaling of the nominal record —
    and the energy/leakage terms carry the corner's supply and
    temperature factors.
    """
    flat = module if module.is_flat else module.flatten()
    flat.validate(library)
    derate = 1.0 if corner is None else corner.timing_derate(process)
    delay = minimum_period_ns(flat, library, derate=derate)
    power = estimate_power(
        flat,
        library,
        process,
        CHAR_FREQUENCY_MHZ,
        input_stats=_char_input_stats(flat),
    )
    energy_pj = power.energy_per_cycle_pj
    leakage_mw = power.leakage_mw
    if corner is not None:
        energy_pj *= corner.energy_scale(process)
        leakage_mw *= corner.leakage_scale(process)
    view = net_view(flat, library)
    return PPARecord(
        delay_ns=delay,
        energy_pj=energy_pj,
        area_um2=sum(g.cell.area_um2 * len(g) for g in view.groups),
        leakage_mw=leakage_mw,
        cells=view.n_instances,
        stage_delays_ns=stage_delays,
    )


def tree_variant(style: str, fa_levels: int, carry_reorder: bool) -> str:
    if style == "mixed" and fa_levels == 0:
        # Structurally identical: zero FA levels degenerates to the pure
        # compressor tree.
        style = "cmp42"
    tag = "r" if carry_reorder else "n"
    return f"{style}-fa{fa_levels}-{tag}"


def build_default_scl(
    library: Optional[StdCellLibrary] = None,
    process: Optional[Process] = None,
    tree_sizes: Iterable[int] = TREE_SIZES,
    verbose: bool = False,
    corner: Optional["SignoffCorner"] = None,
) -> SubcircuitLibrary:
    """Characterize the full default grid.  Takes a few seconds; callers
    normally go through :func:`repro.scl.library.default_scl`, which
    caches the result per (process, corner).

    ``corner`` characterizes the whole grid at one signoff operating
    point (derated STA, corner supply/temperature energy and leakage) —
    the library the searcher prices SS-corner slack from."""
    library = library or default_library()
    process = process or GENERIC_40NM
    scl = SubcircuitLibrary(process=process, cell_library=library,
                            corner=corner)

    def log(msg: str) -> None:
        if verbose:
            print(f"[scl] {msg}")

    # Adder trees.  The RCA builder takes no carry-reorder decision
    # (``_build_rca_tree`` never sees the flag), so the ``-r``/``-n``
    # variants of the pure ripple tree are the same netlist — they are
    # characterized once and the record shared.
    tree_cache: dict = {}
    for style, fa in TREE_STYLES:
        for reorder in (True, False):
            variant = tree_variant(style, fa, reorder)
            for n in tree_sizes:
                key = (style, fa, n, reorder if style != "rca" else False)
                rec = tree_cache.get(key)
                if rec is None:
                    mod, _ = generate_adder_tree(n, style, fa, reorder)
                    rec = tree_cache[key] = characterize_module(
                        mod, library, process, corner=corner
                    )
                scl.table("adder_tree").add(variant, n, rec)
            log(f"adder_tree {variant}")

    # Multiplier/multiplexer rows (record is per row).
    for style in ("tg_nor", "oai22", "pg_1t"):
        for mcr in MCR_VALUES:
            if style == "oai22" and mcr > 2:
                continue
            mod = generate_mult_mux(mcr, style)
            rec = characterize_module(mod, library, process,
                                      corner=corner)
            scl.table("mult_mux").add(style, mcr, rec)
    log("mult_mux")

    # Shift-and-add.
    for k in SA_INPUT_BITS:
        variant = f"k{k}"
        for tw in SA_TREE_WIDTHS:
            mod = generate_shift_adder(tw, k)
            rec = characterize_module(mod, library, process,
                                      corner=corner)
            scl.table("shift_adder").add(variant, tw, rec)
    log("shift_adder")

    # OFU (combinational, registers priced separately by the estimator)
    # and standalone fusion stages for retiming arithmetic — both adder
    # styles, so the searcher has a "faster adder" to reach for.
    #
    # The per-stage characterizations repeat heavily across OFU column
    # counts and widths (100 stage evaluations collapse onto 40 distinct
    # (width, shift, style) triples, 12 of which the fuse_stage grid
    # characterizes anyway); generation and characterization are
    # deterministic, so identical triples share one record.
    fuse_cache: dict = {}

    def fuse_record(width: int, shift: int, style: str) -> PPARecord:
        key = (width, shift, style)
        rec = fuse_cache.get(key)
        if rec is None:
            smod = generate_fuse_stage(width, shift, adder_style=style)
            rec = fuse_cache[key] = characterize_module(
                smod, library, process, corner=corner
            )
        return rec

    for style in ("ripple", "csel"):
        tag = "rpl" if style == "ripple" else "csel"
        for cols in OFU_COLUMNS:
            variant = f"c{cols}-{tag}"
            stages = cols.bit_length() - 1
            for w in OFU_WIDTHS:
                cfg = OFUConfig(columns=cols, input_width=w, adder_style=style)
                mod = generate_ofu(cfg)
                stage_delays = []
                for s in range(1, stages + 1):
                    sw = cfg.stage_width(s - 1)
                    shift = 1 << (s - 1)
                    stage_delays.append(fuse_record(sw, shift, style).delay_ns)
                rec = characterize_module(
                    mod, library, process,
                    stage_delays=tuple(stage_delays), corner=corner
                )
                scl.table("ofu").add(variant, w, rec)
            log(f"ofu c{cols}-{tag}")

        for shift in FUSE_SHIFTS:
            variant = f"s{shift}-{tag}"
            for w in FUSE_WIDTHS:
                rec = fuse_record(w, shift, style)
                scl.table("fuse_stage").add(variant, w, rec)
        log(f"fuse_stage {tag}")

    # Drivers: characterized per 4 rows/cols, stored per unit.
    unit = 4
    for strength in DRIVER_STRENGTHS:
        for width in DRIVER_DIMS:
            wl_load = width * (0.25 + 1.05 * process.wire_cap_ff_per_um)
            mod = generate_wl_driver(unit, wl_load, strength)
            rec = characterize_module(
                mod, library, process, corner=corner
            ).scaled(1.0 / unit)
            scl.table("wl_driver").add(f"drv{strength}", width, rec)
        for rows in DRIVER_DIMS:
            bl_load = rows * (0.30 + 1.0 * process.wire_cap_ff_per_um)
            mod = generate_bl_driver(unit, bl_load, strength)
            rec = characterize_module(
                mod, library, process, corner=corner
            ).scaled(1.0 / unit)
            scl.table("bl_driver").add(f"drv{strength}", rows, rec)
    log("drivers")

    # FP/INT alignment units.
    for fmt in ALIGN_FORMATS:
        for lanes in ALIGN_LANES:
            mod = generate_alignment_unit(fmt, lanes)
            rec = characterize_module(mod, library, process,
                                      corner=corner)
            scl.table("alignment").add(fmt.name, lanes, rec)
        log(f"alignment {fmt.name}")

    # Memory bitcells (closed-form, per cell; the corner factors apply
    # to the same three quantities the STA/power path derates).
    mem_derate = 1.0 if corner is None else corner.timing_derate(process)
    mem_e = 1.0 if corner is None else corner.energy_scale(process)
    mem_l = 1.0 if corner is None else corner.leakage_scale(process)
    for name in MEMCELLS:
        cell = library.cell(name)
        scl.table("memcell").add(
            name,
            1,
            PPARecord(
                delay_ns=cell.arcs[0].d0_ns * mem_derate,
                energy_pj=cell.internal_energy_fj.get("RD", 0.2)
                * 1e-3 * mem_e,
                area_um2=cell.area_um2,
                leakage_mw=cell.leakage_nw * 1e-6 * mem_l,
                cells=1,
            ),
        )
    log("memcells")

    scl.seal()
    return scl
