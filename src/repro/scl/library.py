"""The Subcircuit Library object and its process-wide cache."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..errors import LibraryError
from ..tech.process import GENERIC_40NM, Process
from ..tech.stdcells import StdCellLibrary, default_library
from .lut import PPARecord, PPATable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..signoff.corners import Corner

KINDS = (
    "adder_tree",
    "mult_mux",
    "shift_adder",
    "ofu",
    "fuse_stage",
    "wl_driver",
    "bl_driver",
    "alignment",
    "memcell",
)


class SubcircuitLibrary:
    """PPA lookup tables for all seven DCIM subcircuit types.

    Built once per process by :func:`repro.scl.builder.build_default_scl`
    and then queried (read-only once sealed) by the multi-spec-oriented
    searcher and the baselines.
    """

    def __init__(
        self,
        process: Process,
        cell_library: StdCellLibrary,
        corner: Optional["Corner"] = None,
    ) -> None:
        self.process = process
        self.cell_library = cell_library
        #: Signoff corner the records were characterized at (``None``
        #: means the nominal TT/V/T characterization point).
        self.corner = corner
        self._tables: Dict[str, PPATable] = {k: PPATable(k) for k in KINDS}
        self._sealed = False

    def table(self, kind: str) -> PPATable:
        try:
            table = self._tables[kind]
        except KeyError:
            raise LibraryError(
                f"unknown subcircuit kind {kind!r}; known: {KINDS}"
            ) from None
        if self._sealed:
            return table
        return table

    def lookup(self, kind: str, variant: str, dim: int) -> PPARecord:
        return self.table(kind).lookup(variant, dim)

    def seal(self) -> None:
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def entry_count(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def summary(self) -> str:
        at = self.process.name
        if self.corner is not None:
            at += f" @ corner {self.corner.name}"
        lines = [f"subcircuit library @ {at}:"]
        for kind in KINDS:
            t = self._tables[kind]
            lines.append(
                f"  {kind:12s} {len(t):4d} entries, "
                f"variants: {', '.join(t.variants)}"
            )
        return "\n".join(lines)


_CACHE: Dict[Tuple, SubcircuitLibrary] = {}

#: How the per-(process, corner) default SCL was most recently
#: obtained: ``"built"`` (fresh characterization) or ``"disk"``
#: (persistent cache artifact).  Diagnostics for tests and the perf
#: harness.
_SOURCE: Dict[Tuple, str] = {}


def _cache_key(process: Process, corner: Optional["Corner"]) -> Tuple:
    return (process.name, None if corner is None else corner.key())


def default_scl(
    process: Optional[Process] = None,
    verbose: bool = False,
    corner: Optional["Corner"] = None,
    library: Optional[StdCellLibrary] = None,
) -> SubcircuitLibrary:
    """Shared, lazily built SCL for the default cell library.

    Resolution order: the in-process cache, then the persistent on-disk
    artifact (see :mod:`repro.scl.cache` — milliseconds), then a full
    characterization whose result is persisted for every later process.

    ``corner`` resolves the library characterized at that signoff
    operating point (see :func:`repro.scl.builder.build_default_scl`);
    corner libraries live in the same persistent cache under keys that
    include the corner tuple, so a repeated corner is warm across
    processes exactly like the nominal library.

    ``library`` swaps in an alternate standard-cell backend — e.g. one
    imported from a .lib file via
    :func:`repro.tech.liberty.read_liberty_library`.  Alternate
    backends share the persistent disk cache (the content hash covers
    every cell, so an imported copy of the default library resolves to
    the *same* artifact) but skip the in-process memoization: the
    caller owns the returned object's lifetime.
    """
    from .builder import build_default_scl
    from .cache import load_cached_scl, store_cached_scl

    process = process or GENERIC_40NM
    if library is not None and library is not default_library():
        scl = load_cached_scl(library, process, corner)
        if scl is None:
            scl = build_default_scl(
                library, process, verbose=verbose, corner=corner
            )
            store_cached_scl(scl)
        return scl
    key = _cache_key(process, corner)
    if key not in _CACHE:
        library = default_library()
        scl = load_cached_scl(library, process, corner)
        if scl is None:
            scl = build_default_scl(
                library, process, verbose=verbose, corner=corner
            )
            store_cached_scl(scl)
            _SOURCE[key] = "built"
        else:
            _SOURCE[key] = "disk"
        _CACHE[key] = scl
    return _CACHE[key]


def install_default_scl(
    scl: SubcircuitLibrary,
    process: Optional[Process] = None,
    corner: Optional["Corner"] = None,
    source: str = "shm",
) -> None:
    """Seed the in-process default-SCL cache with an externally
    resolved library (e.g. one attached from a shared-memory segment —
    see :mod:`repro.shm.scl`).  Later :func:`default_scl` calls for
    this (process, corner) return it without touching the disk cache
    or the characterizer.  An unsealed library is rejected: the cache
    only ever holds read-only sealed objects."""
    if not scl.sealed:
        raise LibraryError("install_default_scl requires a sealed library")
    key = _cache_key(process or GENERIC_40NM, corner)
    _CACHE[key] = scl
    _SOURCE[key] = source


def default_scl_source(
    process: Optional[Process] = None,
    corner: Optional["Corner"] = None,
) -> Optional[str]:
    """``"built"``/``"disk"`` for an already-resolved default SCL, else
    ``None`` (never triggers a build).

    A ``"built"`` that *should* have been ``"disk"`` usually means a
    corrupt or schema-stale artifact was hit on the way — pair with
    :func:`repro.scl.cache.scl_cache_corruption_count` to tell churn
    from a legitimately cold cache."""
    return _SOURCE.get(_cache_key(process or GENERIC_40NM, corner))


def cached_default_scl(
    process: Optional[Process] = None,
    corner: Optional["Corner"] = None,
) -> Optional[SubcircuitLibrary]:
    """The already-built default SCL for ``(process, corner)``, or
    ``None``.

    Identity probe that never triggers the multi-second
    characterization — for callers that only need to know whether an
    SCL *is* the shared default (e.g. cache-eligibility checks)."""
    return _CACHE.get(_cache_key(process or GENERIC_40NM, corner))
