"""Persistent on-disk cache for the characterized subcircuit library.

Building the default SCL costs the better part of a second of pure
characterization — and before this cache existed that price was paid by
*every process*: each CLI invocation, each pytest session, and each
batch-engine worker.  The sealed library, however, is a pure function of

* the process node (every :class:`~repro.tech.process.Process` field)
  and, for corner libraries, the signoff corner tuple
  (name, process sigma, supply scale, temperature),
* the standard-cell library (geometry, arcs, energies **and** logic
  behaviour — truth tables are enumerated into the fingerprint so a
  changed cell function invalidates the artifact), and
* the builder configuration (characterization grids, port statistics,
  reference frequency) plus the shared delay/slew/wire-model constants.

so it serializes into a content-addressed JSON artifact: one cold build
per machine, then every later process loads 261 records in
milliseconds.  Layout::

    <cache dir>/v<schema>/<key>.json

where ``<cache dir>`` defaults to ``~/.cache/repro/scl`` (under
``$REPRO_CACHE_DIR`` when set) and ``key`` is a SHA-256 over a
memo-free pickle of the fingerprints above (see
:func:`scl_cache_key`).  Any mismatch — unknown
schema, wrong key, truncated file, missing table — reads as a miss and
triggers a fresh build that overwrites the artifact atomically
(tempfile + ``os.replace``), so a killed process can never leave a
truncated library behind.

Escape hatches
--------------
``REPRO_SCL_CACHE=off|0|false|no|disabled``
    disable the disk cache entirely (every process re-characterizes);
``REPRO_SCL_CACHE=<path>``
    relocate the artifact directory;
``--no-scl-cache``
    the CLI flag equivalent (sets the environment variable, so batch
    workers inherit the choice).

See ``docs/performance.md`` for the full story.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import pathlib
import pickle
import sys
import tempfile
import time
from typing import TYPE_CHECKING, Optional, Set

from ..errors import LibraryError
from ..tech.process import Process
from ..tech.stdcells import Cell, StdCellLibrary
from .lut import PPARecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..signoff.corners import Corner

#: Bump on any incompatible change to the artifact layout *or* to the
#: record semantics that the fingerprints cannot see.
#: v2: multi-Vt / multi-drive cell variants — cell fingerprints carry
#: (vt, drive), and the default library spans the full variant grid.
SCL_CACHE_SCHEMA = 2

#: Values of ``REPRO_SCL_CACHE`` that mean "disabled" rather than a path.
_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})

_ENV_VAR = "REPRO_SCL_CACHE"


def scl_cache_enabled() -> bool:
    """Whether the persistent SCL cache is active for this process."""
    value = os.environ.get(_ENV_VAR, "").strip()
    return value.lower() not in _OFF_VALUES if value else True


def scl_cache_dir() -> pathlib.Path:
    """Artifact directory: ``$REPRO_SCL_CACHE`` if it names a path,
    else ``$REPRO_CACHE_DIR/scl``, else ``~/.cache/repro/scl``."""
    value = os.environ.get(_ENV_VAR, "").strip()
    if value and value.lower() not in _OFF_VALUES:
        return pathlib.Path(value).expanduser()
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return pathlib.Path(base).expanduser() / "scl"
    return pathlib.Path("~/.cache/repro/scl").expanduser()


# --------------------------------------------------------------------------
# Fingerprints.
# --------------------------------------------------------------------------


def _truth_table(cell: Cell, _memo: Optional[dict] = None) -> Optional[str]:
    """Exhaustive behaviour of the cell's logic function (inputs are at
    most five wide, so 32 rows bound the enumeration), packed into one
    row-major bit string (``"01|10"`` for an inverter) — a flat string
    keeps the serialized fingerprint small enough that hashing a
    279-cell variant grid stays in the low milliseconds.

    ``_memo`` deduplicates the enumeration across cells that share one
    function callable — every (vt, drive) variant of a base cell does.
    """
    if cell.function is None:
        return None
    pins = tuple(cell.input_caps_ff)
    key = (cell.function, pins, tuple(cell.outputs))
    if _memo is not None and key in _memo:
        return _memo[key]
    rows = []
    for assignment in itertools.product((0, 1), repeat=len(pins)):
        outs = cell.function(dict(zip(pins, assignment)))
        rows.append("".join(str(int(outs.get(o, 0))) for o in cell.outputs))
    table = "|".join(rows)
    if _memo is not None:
        _memo[key] = table
    return table


def cell_fingerprint(cell: Cell, _truth_memo: Optional[dict] = None) -> dict:
    """Everything characterization can observe about one cell."""
    return {
        "name": cell.name,
        "area_um2": cell.area_um2,
        "input_caps_ff": dict(cell.input_caps_ff),
        "outputs": list(cell.outputs),
        "arcs": [
            [a.input_pin, a.output_pin, a.d0_ns, a.r_kohm]
            for a in cell.arcs
        ],
        "leakage_nw": cell.leakage_nw,
        "internal_energy_fj": dict(cell.internal_energy_fj),
        "truth_table": _truth_table(cell, _truth_memo),
        "is_sequential": cell.is_sequential,
        "clk_pin": cell.clk_pin,
        "clk_to_q_ns": cell.clk_to_q_ns,
        "setup_ns": cell.setup_ns,
        "hold_ns": cell.hold_ns,
        "is_memory": cell.is_memory,
        "width_um": cell.width_um,
        "height_um": cell.height_um,
        "tags": list(cell.tags),
        # The (vt, drive) grid coordinates are first-class identity:
        # swapping a flavor in must re-key even if the scaled numbers
        # were to collide.  The textual pin_functions are deliberately
        # absent — the truth table already pins the semantics, so a
        # cosmetic expression rewrite cannot churn the artifacts.
        "vt": cell.vt,
        "drive": cell.drive,
    }


def library_fingerprint(library: StdCellLibrary) -> dict:
    memo: dict = {}
    return {
        name: cell_fingerprint(library.cell(name), _truth_memo=memo)
        for name in library.names
    }


def process_fingerprint(process: Process) -> dict:
    return {
        "name": process.name,
        "vdd_nominal": process.vdd_nominal,
        "vdd_min": process.vdd_min,
        "vdd_max": process.vdd_max,
        "vth": process.vth,
        "alpha": process.alpha,
        "wire_cap_ff_per_um": process.wire_cap_ff_per_um,
        "wire_res_kohm_per_um": process.wire_res_kohm_per_um,
        "track_pitch_um": process.track_pitch_um,
        "row_height_um": process.row_height_um,
        "temp_nominal_c": process.temp_nominal_c,
        "temp_delay_per_c": process.temp_delay_per_c,
        "temp_leak_exp_c": process.temp_leak_exp_c,
    }


def corner_fingerprint(corner: Optional["Corner"]) -> Optional[dict]:
    """Identity of the signoff corner a library was characterized at.

    ``None`` (the nominal characterization point) fingerprints as
    ``None`` — deliberately identical to the pre-corner schema payload
    shape, extended with the process-sigma deratings so a recalibrated
    sigma invalidates the corner artifacts that baked it in.
    """
    if corner is None:
        return None
    return {
        "name": corner.name,
        "process_corner": corner.process_corner,
        "vdd_scale": corner.vdd_scale,
        "temp_c": corner.temp_c,
        "delay_factor": corner.sigma.delay_factor,
        "leakage_factor": corner.sigma.leakage_factor,
    }


def model_fingerprint() -> dict:
    """Analysis-model constants the records numerically depend on."""
    from ..power import activity
    from ..sta import analysis, graph
    from ..tech import characterization

    return {
        "slew_sensitivity": characterization.SLEW_SENSITIVITY,
        "slew_gain": characterization.SLEW_GAIN,
        "wlm_ff_per_sink": graph.DEFAULT_WLM_FF_PER_SINK,
        "start_slew_ns": analysis.START_SLEW_NS,
        "default_probability": activity.DEFAULT_PROBABILITY,
        "default_density": activity.DEFAULT_DENSITY,
        "clock_density": activity.CLOCK_DENSITY,
        "glitch_density_cap": activity.GLITCH_DENSITY_CAP,
    }


def scl_cache_key(
    library: StdCellLibrary,
    process: Process,
    corner: Optional["Corner"] = None,
) -> str:
    """Content hash over everything a cold build is a function of —
    including the signoff corner tuple for corner-characterized
    libraries, so every (process, corner) pair owns its own artifact."""
    from .builder import grid_fingerprint

    payload = {
        "schema": SCL_CACHE_SCHEMA,
        "process": process_fingerprint(process),
        "corner": corner_fingerprint(corner),
        "cells": library_fingerprint(library),
        "builder": grid_fingerprint(),
        "model": model_fingerprint(),
    }
    # Memo-free pickle instead of canonical JSON: ~10x faster over the
    # 279-cell variant grid, and key computation is the dominant cost of
    # every warm default_scl().  Determinism holds because fingerprint
    # dicts are built in one fixed literal order; disabling the pickler
    # memo (``fast``) keeps the bytes a function of *values* only, so
    # cells that share interned truth-table strings hash identically to
    # an imported copy that does not.  A key drift (new Python pickling
    # ints differently, say) can only cause a rebuild, never a stale hit
    # — the stored key is re-derived from the same payload.
    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=4)
    pickler.fast = True
    pickler.dump(payload)
    return hashlib.sha256(buf.getvalue()).hexdigest()


# --------------------------------------------------------------------------
# Serialization.
# --------------------------------------------------------------------------


def _record_to_dict(record: PPARecord) -> dict:
    return {
        "delay_ns": record.delay_ns,
        "energy_pj": record.energy_pj,
        "area_um2": record.area_um2,
        "leakage_mw": record.leakage_mw,
        "cells": record.cells,
        "stage_delays_ns": list(record.stage_delays_ns),
    }


def _record_from_dict(data: dict) -> PPARecord:
    return PPARecord(
        delay_ns=float(data["delay_ns"]),
        energy_pj=float(data["energy_pj"]),
        area_um2=float(data["area_um2"]),
        leakage_mw=float(data["leakage_mw"]),
        cells=int(data["cells"]),
        stage_delays_ns=tuple(
            float(x) for x in data.get("stage_delays_ns", ())
        ),
    )


def scl_to_payload(scl, key: str) -> dict:
    """Serializable form of a sealed library (JSON floats round-trip
    exactly, so the reloaded records are bit-identical)."""
    from .library import KINDS

    tables = {}
    for kind in KINDS:
        tables[kind] = [
            [variant, dim, _record_to_dict(rec)]
            for (variant, dim), rec in scl.table(kind).items()
        ]
    return {
        "schema": SCL_CACHE_SCHEMA,
        "key": key,
        "created": time.time(),
        "process": scl.process.name,
        "corner": None if scl.corner is None else list(scl.corner.key()),
        "entry_count": scl.entry_count(),
        "tables": tables,
    }


def scl_from_payload(
    payload: dict,
    library: StdCellLibrary,
    process: Process,
    corner: Optional["Corner"] = None,
):
    """Rebuild a sealed library from a payload; raises on any mismatch
    (the caller treats every failure as a cache miss)."""
    from .library import KINDS, SubcircuitLibrary

    if payload.get("schema") != SCL_CACHE_SCHEMA:
        raise LibraryError("SCL cache: schema mismatch")
    if payload.get("process") != process.name:
        raise LibraryError("SCL cache: process mismatch")
    want = None if corner is None else list(corner.key())
    if payload.get("corner") != want:
        raise LibraryError("SCL cache: corner mismatch")
    tables = payload["tables"]
    scl = SubcircuitLibrary(process=process, cell_library=library,
                            corner=corner)
    for kind in KINDS:
        for variant, dim, data in tables[kind]:
            scl.table(kind).add(str(variant), int(dim), _record_from_dict(data))
    if scl.entry_count() != int(payload["entry_count"]):
        raise LibraryError("SCL cache: entry count mismatch")
    if scl.entry_count() == 0:
        raise LibraryError("SCL cache: empty artifact")
    scl.seal()
    return scl


# --------------------------------------------------------------------------
# Disk plumbing.
# --------------------------------------------------------------------------


def _artifact_path(key: str) -> pathlib.Path:
    return scl_cache_dir() / f"v{SCL_CACHE_SCHEMA}" / f"{key}.json"


#: Artifacts found corrupt (or schema-mismatched) since process start —
#: each triggers exactly one warning line, so CI logs show cache churn
#: without being flooded by repeated lookups of the same bad file.
_CORRUPT_KEYS: Set[str] = set()


def scl_cache_corruption_count() -> int:
    """Distinct corrupt artifacts hit since process start (see
    :func:`~repro.scl.library.default_scl_source` for the built/disk
    resolution these corruption events degrade to)."""
    return len(_CORRUPT_KEYS)


def _note_corruption(key: str, path: pathlib.Path, exc: Exception) -> None:
    if key in _CORRUPT_KEYS:
        return
    _CORRUPT_KEYS.add(key)
    print(
        f"repro: SCL cache artifact {path.name} is corrupt or stale "
        f"({exc}); rebuilding",
        file=sys.stderr,
    )


def load_cached_scl(
    library: StdCellLibrary,
    process: Process,
    corner: Optional["Corner"] = None,
):
    """The persisted library for this tech stack (at ``corner``, when
    given), or ``None``.

    Every failure mode — cache disabled, artifact missing, unreadable,
    corrupted, fingerprint drift (which changes the key, so the old
    artifact is simply never looked up) — degrades to ``None`` and a
    fresh characterization.  A *present but unusable* artifact is not
    silent, though: it logs one warning line per artifact and bumps
    :func:`scl_cache_corruption_count`, so cache churn shows up in CI.
    """
    if not scl_cache_enabled():
        return None
    key = scl_cache_key(library, process, corner)
    path = _artifact_path(key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("key") != key:
            raise LibraryError("SCL cache: key mismatch")
        return scl_from_payload(payload, library, process, corner)
    except FileNotFoundError:
        return None  # plain miss — the common, quiet case
    except (OSError, ValueError, KeyError, TypeError, LibraryError) as exc:
        _note_corruption(key, path, exc)
        return None


def store_cached_scl(scl) -> Optional[pathlib.Path]:
    """Persist a sealed library atomically; returns the artifact path or
    ``None`` when disabled / the filesystem refuses (a store failure
    must never break the build that produced the library)."""
    if not scl_cache_enabled():
        return None
    key = scl_cache_key(scl.cell_library, scl.process, scl.corner)
    path = _artifact_path(key)
    payload = scl_to_payload(scl, key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
    except OSError:
        return None
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
