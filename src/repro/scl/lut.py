"""PPA records and lookup tables for the subcircuit library.

"We build a Subcircuit Library (SCL) that includes PPA lookup tables
(LUTs) for subcircuits of various topologies, dimensions, and timing
constraints" (paper Section III.B).  A :class:`PPARecord` summarizes one
characterized subcircuit; a :class:`PPATable` stores records keyed by a
(variant, dimensions) tuple and interpolates along the dimension axes
when asked for a size that was not explicitly characterized — the
paper's "estimated and scaled from synthesis data".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LibraryError


@dataclass(frozen=True)
class PPARecord:
    """Characterized PPA of one subcircuit instance.

    Attributes
    ----------
    delay_ns:
        Worst input-to-output combinational delay (for register-bounded
        blocks like the S&A: the register-to-register path).
    energy_pj:
        Dynamic energy per active cycle at the library's nominal voltage
        and default input statistics.
    area_um2:
        Total placed cell area.
    leakage_mw:
        Static power at nominal voltage.
    cells:
        Leaf-cell count (diagnostics, Table-like reporting).
    stage_delays_ns:
        For multi-stage blocks (OFU): per-stage combinational delays so
        the searcher can price retiming and pipelining moves.
    """

    delay_ns: float
    energy_pj: float
    area_um2: float
    leakage_mw: float
    cells: int = 0
    stage_delays_ns: Tuple[float, ...] = ()

    def scaled(self, factor: float) -> "PPARecord":
        """Linear scale of the extensive quantities (energy/area/leakage
        and cells); delay is intensive and kept."""
        return replace(
            self,
            energy_pj=self.energy_pj * factor,
            area_um2=self.area_um2 * factor,
            leakage_mw=self.leakage_mw * factor,
            cells=int(round(self.cells * factor)),
        )


def _lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def interpolate_records(
    lo: PPARecord, hi: PPARecord, t: float
) -> PPARecord:
    """Component-wise linear interpolation between two records."""
    n_stages = max(len(lo.stage_delays_ns), len(hi.stage_delays_ns))
    stages = tuple(
        _lerp(
            lo.stage_delays_ns[i] if i < len(lo.stage_delays_ns) else 0.0,
            hi.stage_delays_ns[i] if i < len(hi.stage_delays_ns) else 0.0,
            t,
        )
        for i in range(n_stages)
    )
    return PPARecord(
        delay_ns=_lerp(lo.delay_ns, hi.delay_ns, t),
        energy_pj=_lerp(lo.energy_pj, hi.energy_pj, t),
        area_um2=_lerp(lo.area_um2, hi.area_um2, t),
        leakage_mw=_lerp(lo.leakage_mw, hi.leakage_mw, t),
        cells=int(round(_lerp(lo.cells, hi.cells, t))),
        stage_delays_ns=stages,
    )


class PPATable:
    """Records for one subcircuit kind.

    Keys are ``(variant, dim)`` where ``variant`` is a string (topology
    + discrete options) and ``dim`` an integer primary dimension (tree
    inputs, driver rows, OFU input width...).  Lookup at an
    uncharacterized ``dim`` interpolates between the nearest
    characterized sizes of the same variant; beyond the grid it
    extrapolates linearly from the outermost pair.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._records: Dict[Tuple[str, int], PPARecord] = {}
        self._dims_by_variant: Dict[str, List[int]] = {}
        #: Interpolated/extrapolated lookups memoized per (variant, dim)
        #: — the searcher prices the same off-grid sizes thousands of
        #: times per sweep.  Records are frozen, so sharing is safe;
        #: :meth:`add` invalidates (tables are sealed in practice).
        self._interp_cache: Dict[Tuple[str, int], PPARecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    @property
    def variants(self) -> Tuple[str, ...]:
        return tuple(sorted(self._dims_by_variant))

    def add(self, variant: str, dim: int, record: PPARecord) -> None:
        key = (variant, dim)
        if key in self._records:
            raise LibraryError(f"{self.kind}: duplicate entry {key}")
        self._records[key] = record
        dims = self._dims_by_variant.setdefault(variant, [])
        bisect.insort(dims, dim)
        self._interp_cache.clear()

    def exact(self, variant: str, dim: int) -> Optional[PPARecord]:
        return self._records.get((variant, dim))

    def lookup(self, variant: str, dim: int) -> PPARecord:
        key = (variant, dim)
        rec = self._records.get(key)
        if rec is not None:
            return rec
        rec = self._interp_cache.get(key)
        if rec is not None:
            return rec
        dims = self._dims_by_variant.get(variant)
        if not dims:
            raise LibraryError(
                f"{self.kind}: unknown variant {variant!r}; "
                f"known: {self.variants}"
            )
        if len(dims) == 1:
            only = self._records[(variant, dims[0])]
            rec = only.scaled(dim / dims[0])
            self._interp_cache[key] = rec
            return rec
        pos = bisect.bisect_left(dims, dim)
        if pos == 0:
            lo_d, hi_d = dims[0], dims[1]
        elif pos >= len(dims):
            lo_d, hi_d = dims[-2], dims[-1]
        else:
            lo_d, hi_d = dims[pos - 1], dims[pos]
        lo = self._records[(variant, lo_d)]
        hi = self._records[(variant, hi_d)]
        t = (dim - lo_d) / (hi_d - lo_d)
        rec = interpolate_records(lo, hi, t)
        # Clamp extrapolated extensive metrics at zero.
        if rec.energy_pj < 0 or rec.area_um2 < 0:
            rec = PPARecord(
                delay_ns=max(rec.delay_ns, 1e-4),
                energy_pj=max(rec.energy_pj, 0.0),
                area_um2=max(rec.area_um2, 0.0),
                leakage_mw=max(rec.leakage_mw, 0.0),
                cells=max(rec.cells, 0),
                stage_delays_ns=rec.stage_delays_ns,
            )
        self._interp_cache[key] = rec
        return rec

    def items(self):
        return self._records.items()
