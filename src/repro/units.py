"""Physical unit conventions and helpers used across the compiler.

Every quantity in the code base is stored in the following base units so
that modules can exchange raw floats without ambiguity:

===========  =========  ======================================
Quantity     Unit       Notes
===========  =========  ======================================
time/delay   ns         nanoseconds
frequency    MHz        ``1e3 / period_ns``
capacitance  fF         femtofarads
energy       pJ         picojoules (fF * V^2 = fJ; see below)
power        mW         milliwatts (pJ * MHz * 1e-3 = mW)
area         um^2       square micrometres
length       um         micrometres
voltage      V          volts
===========  =========  ======================================

The helpers below perform the unit algebra in one audited place, which
keeps conversion factors out of the analysis code.
"""

from __future__ import annotations

# Scale factors relative to base SI units (informational, used by reports).
NS = 1e-9
MHZ = 1e6
FF = 1e-15
PJ = 1e-12
MW = 1e-3
UM = 1e-6

GHZ_PER_MHZ = 1e-3
TOPS_PER_GOPS = 1e-3


def period_ns(frequency_mhz: float) -> float:
    """Clock period in ns for a frequency in MHz."""
    if frequency_mhz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    return 1e3 / frequency_mhz


def frequency_mhz(period: float) -> float:
    """Frequency in MHz for a clock period in ns."""
    if period <= 0.0:
        raise ValueError(f"period must be positive, got {period}")
    return 1e3 / period


def switching_energy_pj(capacitance_ff: float, vdd: float) -> float:
    """Energy of one full-swing transition of ``capacitance_ff`` at ``vdd``.

    ``E = C * Vdd^2``; with C in fF and V in volts the product is in fJ,
    so we divide by 1000 to express the result in pJ.
    """
    return capacitance_ff * vdd * vdd * 1e-3


def dynamic_power_mw(energy_per_cycle_pj: float, frequency: float) -> float:
    """Average dynamic power for ``energy_per_cycle_pj`` spent each cycle.

    pJ * MHz = uW, divided by 1000 for mW.
    """
    return energy_per_cycle_pj * frequency * 1e-3


def tops_per_watt(ops_per_cycle: float, frequency: float, power_mw: float) -> float:
    """Energy efficiency in TOPS/W.

    ``ops_per_cycle * f[MHz]`` is MOPS; divide by power in mW to get
    MOPS/mW == GOPS/W, then by 1000 for TOPS/W.
    """
    if power_mw <= 0.0:
        raise ValueError(f"power must be positive, got {power_mw}")
    return ops_per_cycle * frequency / power_mw * 1e-3


def tops_per_mm2(ops_per_cycle: float, frequency: float, area_um2: float) -> float:
    """Area efficiency in TOPS/mm^2."""
    if area_um2 <= 0.0:
        raise ValueError(f"area must be positive, got {area_um2}")
    tops = ops_per_cycle * frequency * 1e-6  # MOPS -> TOPS
    return tops / (area_um2 * 1e-6)


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Human-readable engineering formatting, e.g. ``format_si(1234, 'MHz')``."""
    return f"{value:.{digits}g} {unit}"
