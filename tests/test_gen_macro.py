"""Full-macro netlist verification: every architecture knob must keep
the generated netlist bit-exact against the behavioural golden model.

This is the reproduction's core correctness claim — the compiler can
permute memory cells, multiplier styles, tree families, pipeline
registers, retiming and fusion adders, and the silicon-level behaviour
(bit-serial MAC with signed weights and column fusion) never changes.
"""

import numpy as np
import pytest

from repro.arch import MacroArchitecture
from repro.rtl.gen.macro import generate_macro, macro_shape
from repro.spec import INT2, INT4, INT8, MacroSpec

from macro_tb import MacroTestbench


def _spec(h=8, w=8, mcr=2, fmt=INT4, freq=400.0):
    return MacroSpec(
        height=h,
        width=w,
        mcr=mcr,
        input_formats=(fmt,),
        weight_formats=(fmt,),
        mac_frequency_mhz=freq,
    )


def _check(spec, arch, trials=3, seed=0):
    tb = MacroTestbench(spec, arch)
    rng = np.random.default_rng(seed)
    fmt = spec.weight_formats[0]
    lo, hi = -(1 << (fmt.bits - 1)), (1 << (fmt.bits - 1)) - 1
    k = spec.input_width
    for trial in range(trials):
        for bank in range(spec.mcr):
            w = rng.integers(lo, hi + 1, size=(spec.height, tb.model.n_groups))
            tb.load_weights(bank, w, fmt)
        bank = int(rng.integers(0, spec.mcr))
        x = [
            int(v)
            for v in rng.integers(-(1 << (k - 1)), 1 << (k - 1), size=spec.height)
        ]
        assert tb.run_mac(x, bank) == tb.expected(x, bank), (
            arch.knob_summary(),
            trial,
        )


class TestArchitectureEquivalence:
    def test_default(self):
        _check(_spec(), MacroArchitecture())

    @pytest.mark.parametrize("style", ["tg_nor", "oai22", "pg_1t"])
    def test_multiplier_styles(self, style):
        _check(_spec(), MacroArchitecture(mult_style=style))

    @pytest.mark.parametrize(
        "tree,fa", [("rca", 0), ("cmp42", 0), ("mixed", 1), ("mixed", 3)]
    )
    def test_tree_styles(self, tree, fa):
        _check(
            _spec(), MacroArchitecture(tree_style=tree, tree_fa_levels=fa)
        )

    def test_no_carry_reorder(self):
        _check(_spec(), MacroArchitecture(carry_reorder=False))

    @pytest.mark.parametrize("split", [2])
    def test_column_split(self, split):
        _check(_spec(), MacroArchitecture(column_split=split))

    def test_column_split4_on_taller_macro(self):
        _check(_spec(h=16, w=4), MacroArchitecture(column_split=4), trials=2)

    def test_merged_tree_register(self):
        _check(_spec(), MacroArchitecture(reg_after_tree=False))

    def test_merged_sna_register(self):
        _check(_spec(), MacroArchitecture(reg_after_sna=False))

    @pytest.mark.parametrize("pipe", [1, 2])
    def test_ofu_pipeline(self, pipe):
        _check(_spec(), MacroArchitecture(ofu_pipeline=pipe))

    def test_ofu_retimed(self):
        _check(_spec(), MacroArchitecture(ofu_retimed=True))

    def test_ofu_carry_select(self):
        _check(_spec(), MacroArchitecture(ofu_csel=True))

    def test_everything_at_once(self):
        _check(
            _spec(h=16, w=8),
            MacroArchitecture(
                memcell="DCIM8T",
                mult_style="pg_1t",
                tree_style="mixed",
                tree_fa_levels=2,
                column_split=2,
                reg_after_tree=True,
                reg_after_sna=True,
                ofu_pipeline=1,
                ofu_retimed=True,
                ofu_csel=True,
                driver_strength=8,
            ),
            trials=2,
        )


class TestSpecVariants:
    def test_int8(self):
        _check(_spec(fmt=INT8), MacroArchitecture(), trials=2)

    def test_int2(self):
        _check(_spec(fmt=INT2), MacroArchitecture(), trials=2)

    def test_mcr4(self):
        _check(_spec(mcr=4), MacroArchitecture(), trials=2)

    def test_mcr1(self):
        _check(_spec(mcr=1), MacroArchitecture(), trials=2)

    def test_wide_macro(self):
        _check(_spec(h=8, w=16), MacroArchitecture(), trials=2)

    def test_bank_switching_changes_result(self):
        spec = _spec()
        tb = MacroTestbench(spec, MacroArchitecture())
        rng = np.random.default_rng(42)
        w0 = rng.integers(-8, 8, size=(8, tb.model.n_groups))
        w1 = -w0
        tb.load_weights(0, w0, INT4)
        tb.load_weights(1, w1, INT4)
        x = [1, 2, 3, -4, 5, -6, 7, -8]
        r0 = tb.run_mac(x, bank=0)
        r1 = tb.run_mac(x, bank=1)
        assert r0 == tb.expected(x, 0)
        assert r1 == tb.expected(x, 1)
        assert r0 == [-v for v in r1]


class TestShape:
    def test_latency_accounts_for_registers(self):
        spec = _spec()
        base = macro_shape(spec, MacroArchitecture())
        piped = macro_shape(spec, MacroArchitecture(ofu_pipeline=2))
        merged = macro_shape(spec, MacroArchitecture(reg_after_tree=False))
        assert piped.latency_cycles > base.latency_cycles
        assert merged.latency_cycles == base.latency_cycles - 1

    def test_shape_dimensions(self):
        spec = MacroSpec(
            height=64,
            width=64,
            mcr=2,
            input_formats=(INT8,),
            weight_formats=(INT8,),
        )
        shape = macro_shape(spec, MacroArchitecture())
        assert shape.tree_width == 7
        assert shape.acc_width == 15
        assert shape.ofu_columns == 8
        assert shape.n_groups == 8

    def test_extreme_outputs_saturate_nothing(self):
        """All-max weights x all-min inputs must be exactly representable
        (widths were sized for worst case)."""
        spec = _spec()
        tb = MacroTestbench(spec, MacroArchitecture())
        wmax = np.full((8, tb.model.n_groups), 7)
        tb.load_weights(0, wmax, INT4)
        tb.load_weights(1, wmax, INT4)
        x = [-8] * 8
        assert tb.run_mac(x, 0) == tb.expected(x, 0) == [-448, -448]
