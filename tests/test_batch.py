"""Batch subsystem: hashing, sweep grammar, cache, engine, CLI.

The equivalence test at the bottom is the contract the whole subsystem
rests on: a batch run over N specs — deduplicated, pooled, cached —
must produce exactly the records that N sequential
``SynDCIM().compile()`` calls would.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.arch import MacroArchitecture
from repro.batch.cache import ResultCache
from repro.batch.engine import BatchCompiler, BatchResult, BatchStats
from repro.batch.jobs import CompileJob, ImplementJob
from repro.batch.sweep import (
    expand_grid,
    grid_summary,
    parse_axis,
    parse_format_sets,
    parse_range,
)
from repro.cli import main as cli_main
from repro.errors import SpecificationError
from repro.spec import FP8, INT4, INT8, MacroSpec, PPAWeights

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _small_spec(**overrides) -> MacroSpec:
    base = dict(
        height=8,
        width=8,
        mcr=2,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=400.0,
    )
    base.update(overrides)
    return MacroSpec(**base)


# -- serialization and hashing ---------------------------------------------


class TestSpecSerialization:
    def test_roundtrip(self):
        spec = _small_spec(
            input_formats=(INT4, INT8, FP8),
            weight_formats=(INT8,),
            ppa=PPAWeights(power=3.0),
            vdd=1.1,
        )
        assert MacroSpec.from_dict(spec.to_dict()) == spec

    def test_roundtrip_through_json(self):
        spec = _small_spec()
        blob = json.dumps(spec.to_dict())
        assert MacroSpec.from_dict(json.loads(blob)) == spec

    def test_equal_specs_equal_hashes(self):
        assert _small_spec().content_hash() == _small_spec().content_hash()

    def test_any_field_changes_hash(self):
        base = _small_spec()
        for changed in (
            base.replace(height=16),
            base.replace(mac_frequency_mhz=500.0),
            base.replace(vdd=1.0),
            base.replace(ppa=PPAWeights(area=2.0)),
            base.replace(weight_formats=(INT8,)),
        ):
            assert changed.content_hash() != base.content_hash()

    def test_hash_stable_across_processes(self):
        """The cache key must survive PYTHONHASHSEED randomization."""
        code = (
            "from repro.spec import MacroSpec; "
            "print(MacroSpec(height=8, width=8).content_hash())"
        )
        digests = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = (
                str(REPO_ROOT / "src")
                + os.pathsep
                + env.get("PYTHONPATH", "")
            )
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert digests == {MacroSpec(height=8, width=8).content_hash()}

    def test_arch_roundtrip(self):
        arch = MacroArchitecture(
            memcell="DCIM8T", column_split=2, ofu_csel=True
        )
        assert MacroArchitecture.from_dict(arch.to_dict()) == arch


class TestJobKeys:
    def test_same_job_same_key(self):
        a = CompileJob(spec=_small_spec())
        b = CompileJob(spec=_small_spec())
        assert a.key() == b.key()

    def test_options_change_key(self):
        spec = _small_spec()
        base = CompileJob(spec=spec)
        assert CompileJob(spec=spec, implement=False).key() != base.key()
        assert CompileJob(spec=spec, seed=7).key() != base.key()
        assert (
            CompileJob(spec=spec, input_sparsity=0.5).key() != base.key()
        )

    def test_process_name_in_key_and_payload(self):
        """The process must reach the worker, not just the hash —
        key-only coverage would cache default-node numbers under
        another process's key."""
        spec = _small_spec()
        a = CompileJob(spec=spec)
        b = CompileJob(spec=spec, process_name="other40")
        assert a.key() != b.key()
        assert a.payload()["process"] != b.payload()["process"]

    def test_unregistered_process_is_an_error_record(self):
        from repro.compiler.syndcim import execute_job

        record = execute_job(
            CompileJob(
                spec=_small_spec(), implement=False, process_name="bogus"
            ).payload()
        )
        assert record["status"] == "error"
        assert "bogus" in record["error"]

    def test_implement_job_keyed_by_arch(self):
        spec = _small_spec()
        a = ImplementJob(spec=spec, arch=MacroArchitecture())
        b = ImplementJob(
            spec=spec, arch=MacroArchitecture(driver_strength=8)
        )
        assert a.key() != b.key()
        assert a.key() != CompileJob(spec=spec).key()


# -- sweep grammar ----------------------------------------------------------


class TestSweepGrammar:
    def test_single_value(self):
        assert parse_range("64") == [64]

    def test_geometric(self):
        assert parse_range("32:256:x2") == [32, 64, 128, 256]

    def test_geometric_inexact_stop(self):
        assert parse_range("32:200:x2") == [32, 64, 128]

    def test_arithmetic(self):
        assert parse_range("400:1000:+200", integer=False) == [
            400.0,
            600.0,
            800.0,
            1000.0,
        ]

    def test_arithmetic_descending(self):
        assert parse_range("12:4:+-4") == [12, 8, 4]

    def test_float_axis(self):
        assert parse_range("0.6:0.9:+0.1", integer=False) == pytest.approx(
            [0.6, 0.7, 0.8, 0.9]
        )

    def test_float_axis_no_drift(self):
        """Values must equal hand-typed literals exactly (they feed the
        cache key), not accumulate binary floating-point error."""
        assert parse_range("0.6:1.2:+0.1", integer=False) == [
            0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2,
        ]

    @pytest.mark.parametrize(
        "token",
        [
            "",
            "a",
            "32:64",
            "32:64:*2",
            "32:64:x1",
            "32:64:+0",
            "64:32:+8",
            "-32:64:x2",
            "1:100000000:+1",
        ],
    )
    def test_rejects_malformed(self, token):
        with pytest.raises(SpecificationError):
            parse_range(token)

    def test_axis_deduplicates(self):
        assert parse_axis(["32", "32:64:x2"]) == [32, 64]

    def test_format_sets(self):
        sets = parse_format_sets(["INT4,INT8", "FP8"])
        assert [tuple(f.name for f in s) for s in sets] == [
            ("INT4", "INT8"),
            ("FP8",),
        ]
        with pytest.raises(SpecificationError):
            parse_format_sets([","])

    def test_expand_grid_order_and_size(self):
        specs = expand_grid(
            heights=[32, 64],
            widths=[64],
            mcrs=[2],
            format_sets=parse_format_sets(["INT4"]),
            frequencies=[400.0, 800.0],
            vdds=[0.9],
        )
        assert len(specs) == 4
        assert [(s.height, s.mac_frequency_mhz) for s in specs] == [
            (32, 400.0),
            (32, 800.0),
            (64, 400.0),
            (64, 800.0),
        ]
        assert "4-point grid" in grid_summary(specs)

    def test_expand_grid_rejects_empty_axis(self):
        with pytest.raises(SpecificationError):
            expand_grid([], [64], [2], parse_format_sets(["INT4"]), [800.0], [0.9])

    def test_expand_grid_invalid_spec_propagates(self):
        with pytest.raises(SpecificationError):
            expand_grid(
                [48], [64], [2], parse_format_sets(["INT4"]), [800.0], [0.9]
            )


# -- result cache -----------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        record = {"status": "ok", "power_mw": 1.5}
        cache.put("ab" * 32, record)
        assert "ab" * 32 in cache
        assert cache.get("ab" * 32) == record
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"v": 1})
        cache.put("ab" * 32, {"v": 2})
        assert cache.get("aa" * 32) == {"v": 1}
        assert cache.get("ab" * 32) == {"v": 2}
        assert cache.entry_count() == 2

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"v": 1})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}

    @pytest.mark.parametrize("blob", ["[]", '"x"', "3", '{"record": [1]}'])
    def test_wrong_shaped_json_reads_as_miss(self, tmp_path, blob):
        cache = ResultCache(tmp_path)
        key = "ce" * 32
        cache.put(key, {"v": 1})
        cache._path(key).write_text(blob)
        assert cache.get(key) is None

    def test_disabled_cache_stores_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        cache.put("ef" * 32, {"v": 1})
        assert cache.get("ef" * 32) is None
        assert cache.entry_count() == 0

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put("12" * 32, {"v": 3})
        assert ResultCache(tmp_path).get("12" * 32) == {"v": 3}

    def test_unwritable_store_degrades_to_not_cached(self, tmp_path):
        """A store failure must never raise — the record it was trying
        to persist is the product of real compute upstream."""
        blocker = tmp_path / "blocker"
        blocker.write_text("I am a file, not a directory")
        cache = ResultCache(blocker)
        cache.put("34" * 32, {"v": 1})  # mkdir under a file fails
        assert cache.stats.stores == 0
        assert cache.get("34" * 32) is None


# -- batch engine -----------------------------------------------------------


def _exit_worker(payload):
    """Top-level (so the pool can pickle it): simulates a worker killed
    mid-job — os._exit skips all exception handling, like an OOM kill."""
    os._exit(13)


def _strip_markers(record: dict) -> dict:
    return {
        k: v for k, v in record.items() if k not in ("cached", "job_key")
    }


class TestBatchEngine:
    def test_batch_equals_sequential_compiles(self, tmp_path, scl):
        """A 4-spec batch (pooled, jobs=2) must reproduce 4 sequential
        SynDCIM().compile() runs record-for-record."""
        from repro.compiler.syndcim import SynDCIM, result_to_record

        specs = [
            _small_spec(mac_frequency_mhz=300.0),
            _small_spec(mac_frequency_mhz=400.0),
            _small_spec(height=16, mcr=1),
            _small_spec(width=16),
        ]
        engine = BatchCompiler(jobs=2, cache_dir=tmp_path)
        batch = engine.compile_specs(specs, implement=True)
        assert len(batch) == 4
        assert [r["status"] for r in batch] == ["ok"] * 4

        compiler = SynDCIM(scl=scl)
        for spec, record in zip(specs, batch.records):
            expected = result_to_record(compiler.compile(spec))
            got = _strip_markers(record)
            got.pop("elapsed_s")
            assert got == expected

    def test_second_run_is_all_cache_hits(self, tmp_path):
        specs = [
            _small_spec(mac_frequency_mhz=300.0),
            _small_spec(mac_frequency_mhz=400.0),
        ]
        first = BatchCompiler(jobs=1, cache_dir=tmp_path).compile_specs(
            specs, implement=False
        )
        assert first.stats.compiled == 2
        second = BatchCompiler(jobs=1, cache_dir=tmp_path).compile_specs(
            specs, implement=False
        )
        assert second.stats.compiled == 0
        assert second.stats.cache_hits == 2
        assert "compiled 0" in second.stats.cache_line()
        assert all(r["cached"] for r in second.records)
        for a, b in zip(first.records, second.records):
            assert _strip_markers(a) == _strip_markers(b)

    def test_duplicate_specs_folded(self, tmp_path):
        spec = _small_spec()
        batch = BatchCompiler(jobs=1, cache_dir=tmp_path).compile_specs(
            [spec, spec, spec], implement=False
        )
        assert batch.stats.total == 3
        assert batch.stats.unique == 1
        assert batch.stats.deduplicated == 2
        assert batch.stats.compiled == 1
        assert len(batch.records) == 3
        assert (
            batch.records[0]["selected"] == batch.records[2]["selected"]
        )
        # Equal but not aliased: mutating one record must not corrupt
        # its duplicates.
        batch.records[0]["selected"]["power_mw"] = -1.0
        assert batch.records[2]["selected"]["power_mw"] != -1.0

    def test_infeasible_spec_is_a_record_not_a_crash(self, tmp_path):
        specs = [
            _small_spec(),
            _small_spec(height=256, width=64, mac_frequency_mhz=5000.0),
        ]
        batch = BatchCompiler(jobs=1, cache_dir=tmp_path).compile_specs(
            specs, implement=False
        )
        assert [r["status"] for r in batch] == ["ok", "infeasible"]
        assert batch.records[1]["selected"] is None
        assert "infeasible" in batch.describe()
        # Infeasibility is deterministic, so it caches too — and the
        # stats must still count it when it arrives as a cache hit.
        again = BatchCompiler(jobs=1, cache_dir=tmp_path).compile_specs(
            specs, implement=False
        )
        assert again.stats.compiled == 0
        assert again.stats.infeasible == 1

    def test_progress_callback_sees_every_job(self, tmp_path):
        seen = []
        engine = BatchCompiler(
            jobs=1,
            cache_dir=tmp_path,
            progress=lambda done, total, rec: seen.append((done, total)),
        )
        engine.compile_specs(
            [_small_spec(), _small_spec(height=16)], implement=False
        )
        assert seen == [(1, 2), (2, 2)]

    def test_no_cache_mode(self, tmp_path):
        engine = BatchCompiler(jobs=1, use_cache=False)
        batch = engine.compile_specs([_small_spec()], implement=False)
        assert batch.stats.compiled == 1
        assert engine.cache is None

    def test_worker_death_becomes_error_record(self, tmp_path, monkeypatch):
        """A worker killed outright (OOM/segfault) must surface as an
        error record, not abort the batch with BrokenProcessPool."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fork-only: relies on children inheriting the patch")
        import repro.compiler.syndcim as syndcim_mod

        monkeypatch.setattr(syndcim_mod, "execute_job", _exit_worker)
        specs = [_small_spec(), _small_spec(height=16)]
        batch = BatchCompiler(jobs=2, cache_dir=tmp_path).compile_specs(
            specs, implement=False
        )
        assert [r["status"] for r in batch] == ["error", "error"]
        assert all("worker died" in r["error"] for r in batch)
        assert batch.stats.failed == 2

    def test_map_preserves_order(self):
        engine = BatchCompiler(jobs=2, use_cache=False)
        assert engine.map(abs, [-3, 2, -1]) == [3, 2, 1]

    def test_seed_in_cache_key_and_determinism(self, tmp_path, scl):
        """Seeded searches are reproducible and keyed separately."""
        from repro.search.algorithm import MSOSearcher

        spec = _small_spec()
        a = MSOSearcher(scl, seed=11).search(spec)
        b = MSOSearcher(scl, seed=11).search(spec)
        assert [e.describe() for e in a.frontier] == [
            e.describe() for e in b.frontier
        ]
        unseeded = MSOSearcher(scl).search(spec)
        assert {e.arch.knob_summary() for e in a.frontier} == {
            e.arch.knob_summary() for e in unseeded.frontier
        }

    def test_compile_cached_single_spec(self, tmp_path):
        from repro.compiler.syndcim import SynDCIM

        cache = ResultCache(tmp_path)
        first = SynDCIM().compile_cached(
            _small_spec(), cache=cache, implement_design=False
        )
        assert first["status"] == "ok"
        assert cache.stats.stores == 1
        second = SynDCIM().compile_cached(
            _small_spec(), cache=cache, implement_design=False
        )
        assert second == first
        assert cache.stats.hits == 1

    def test_compile_cached_bypasses_unregistered_process(self, tmp_path):
        """A process that isn't the registered node of its name — by
        name or by parameters — must never share cache entries with it
        (a hit would hand back the wrong node's numbers)."""
        from repro.compiler.syndcim import SynDCIM
        from repro.tech.process import Process

        cache = ResultCache(tmp_path)
        spec = _small_spec()
        SynDCIM().compile_cached(spec, cache=cache, implement_design=False)
        assert cache.stats.stores == 1
        # Different name: not registered → bypass.
        alt = SynDCIM(process=Process(name="alt40"))
        alt.compile_cached(spec, cache=cache, implement_design=False)
        # Default name but altered parameters: also bypass.
        tweaked = SynDCIM(process=Process(alpha=2.0))
        tweaked.compile_cached(spec, cache=cache, implement_design=False)
        assert cache.stats.stores == 1
        assert cache.stats.hits == 0

    def test_compile_cached_bypasses_cache_for_custom_toolchain(
        self, tmp_path
    ):
        """A custom cell library has no fingerprint in the cache key,
        so it must never read or write shared entries."""
        from repro.compiler.syndcim import SynDCIM
        from repro.tech.stdcells import StdCellLibrary

        cache = ResultCache(tmp_path)
        spec = _small_spec()
        default_rec = SynDCIM().compile_cached(
            spec, cache=cache, implement_design=False
        )
        assert cache.stats.stores == 1
        custom = SynDCIM(library=StdCellLibrary())
        custom_rec = custom.compile_cached(
            spec, cache=cache, implement_design=False
        )
        assert custom_rec["status"] == "ok"
        assert cache.stats.hits == 0  # neither read nor wrote
        assert cache.stats.stores == 1
        assert default_rec["selected"] == custom_rec["selected"]

    def test_compile_cached_custom_scl_probe_does_not_build(
        self, tmp_path, scl
    ):
        """Deciding that a custom SCL bypasses the cache must not build
        the multi-second default SCL as a side effect; an SCL obtained
        from default_scl() keeps full cache eligibility."""
        from repro.compiler.syndcim import SynDCIM
        from repro.scl.library import _CACHE, cached_default_scl
        from repro.tech.process import Process

        alt = Process(name="probe40")
        assert cached_default_scl(alt) is None
        compiler = SynDCIM(scl=scl, process=alt)
        # scl fixture is the generic40 default, not probe40's → bypass.
        record = compiler.compile_cached(
            _small_spec(), cache=ResultCache(tmp_path), implement_design=False
        )
        assert record["status"] == "ok"
        assert "probe40" not in _CACHE  # probe alone did not build it

        shared = SynDCIM(scl=scl)  # generic40 default: cache-eligible
        cache = ResultCache(tmp_path / "shared")
        shared.compile_cached(
            _small_spec(), cache=cache, implement_design=False
        )
        assert cache.stats.stores == 1

    def test_execute_job_turns_any_crash_into_error_record(self):
        """A worker bug must become a status='error' record, never an
        exception that aborts the pool and discards the sweep."""
        from repro.compiler.syndcim import execute_job

        record = execute_job(
            {"type": "bogus", "spec": _small_spec().to_dict()}
        )
        assert record["status"] == "error"
        assert "ValueError" in record["error"]


# -- summarize --------------------------------------------------------------


class TestSummarize:
    @pytest.fixture(scope="class")
    def records(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("cache")
        specs = [
            _small_spec(mac_frequency_mhz=300.0),
            _small_spec(height=16, mac_frequency_mhz=300.0),
            _small_spec(height=256, width=64, mac_frequency_mhz=5000.0),
        ]
        return BatchCompiler(jobs=1, cache_dir=cache_dir).compile_specs(
            specs, implement=False
        ).records

    def test_summarize_sections(self, records):
        from repro.batch.summarize import summarize

        text = summarize(records)
        assert "2 ok, 1 infeasible" in text
        assert "Pareto frontier" in text
        assert "array-size scaling" in text

    def test_jsonl_roundtrip(self, records, tmp_path):
        from repro.batch.summarize import load_records, summarize

        path = tmp_path / "r.jsonl"
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        loaded = load_records(path)
        assert summarize(loaded) == summarize(records)

    def test_load_rejects_garbage(self, tmp_path):
        from repro.batch.summarize import load_records

        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_records(path)


# -- CLI --------------------------------------------------------------------


class TestBatchCLI:
    def test_sweep_then_cached_sweep(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--height", "8:16:x2",
            "--width", "8",
            "--formats", "INT4",
            "--frequency", "300",
            "--no-implement",
            "--no-summary",
            "-j", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "out.jsonl"),
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "2-point grid" in out
        assert "compiled 2" in out
        lines = (tmp_path / "out.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["status"] == "ok"

        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "cache: 2 hits, 0 misses; compiled 0" in out
        assert "cached" in out

    def test_sweep_stdout_output_and_summary(self, tmp_path, capsys):
        """--output - pipes pure JSONL to stdout, chatter to stderr."""
        rc = cli_main(
            [
                "sweep",
                "--height", "8",
                "--width", "8",
                "--formats", "INT4",
                "--frequency", "300",
                "--no-implement",
                "-j", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", "-",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        lines = [ln for ln in captured.out.splitlines() if ln.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["status"] == "ok"
        assert "Pareto frontier across the sweep" in captured.err
        assert "cache:" in captured.err

    def test_sweep_bad_range_errors(self, tmp_path, capsys):
        rc = cli_main(
            ["sweep", "--height", "8:16", "--no-implement", "-j", "1",
             "--cache-dir", str(tmp_path), "--output", "-"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_duplicate_specs_one_jsonl_line_each(
        self, tmp_path, capsys
    ):
        """Folded duplicate jobs still yield one JSONL line per
        requested point (streaming writes uniques; copies appended)."""
        specs_file = tmp_path / "specs.jsonl"
        blob = json.dumps(_small_spec().to_dict())
        specs_file.write_text(blob + "\n" + blob + "\n")
        out_file = tmp_path / "out.jsonl"
        rc = cli_main(
            [
                "batch",
                "--specs", str(specs_file),
                "--no-implement",
                "--no-summary",
                "-j", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(out_file),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        lines = out_file.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["selected"] == (
            json.loads(lines[1])["selected"]
        )

    def test_batch_command_reads_spec_file(self, tmp_path, capsys):
        specs_file = tmp_path / "specs.jsonl"
        with open(specs_file, "w") as fh:
            fh.write(json.dumps(_small_spec().to_dict()) + "\n")
        rc = cli_main(
            [
                "batch",
                "--specs", str(specs_file),
                "--no-implement",
                "--no-summary",
                "-j", "1",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(tmp_path / "out.jsonl"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 specs" in out
        assert (tmp_path / "out.jsonl").exists()

    def test_batch_missing_file_errors(self, capsys):
        rc = cli_main(["batch", "--specs", "/nonexistent.jsonl"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "entry", ['{"h": 64}', "64", '{"height": 48, "width": 8}']
    )
    def test_batch_malformed_spec_entry_clean_error(
        self, tmp_path, capsys, entry
    ):
        specs_file = tmp_path / "specs.jsonl"
        specs_file.write_text(entry + "\n")
        rc = cli_main(["batch", "--specs", str(specs_file)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "entry 1" in err or "height" in err


# -- recovery accounting (resilience counters in the CLI cache line) ---------


class TestRecoveryStats:
    def test_cache_line_quiet_when_nothing_recovered(self):
        stats = BatchStats(total=4, unique=4, compiled=4)
        assert "recovery" not in stats.cache_line()

    def test_cache_line_reports_recovery_counters(self):
        stats = BatchStats(
            total=20,
            unique=20,
            compiled=8,
            retried=3,
            resumed=12,
            timeouts=1,
        )
        line = stats.cache_line()
        assert "recovery: retried 3, resumed 12, timeouts 1" in line

    def test_cache_line_reports_partial_recovery(self):
        line = BatchStats(total=2, unique=2, retried=2).cache_line()
        assert line.endswith("recovery: retried 2")
        assert "resumed" not in line
        assert "timeouts" not in line

    def test_describe_counts_timeouts(self):
        result = BatchResult(
            records=[
                {"status": "ok"},
                {"status": "timeout"},
                {"status": "error"},
            ],
            stats=BatchStats(total=3, unique=3),
        )
        assert "1 ok, 0 infeasible, 1 failed, 1 timed out" in result.describe()
