"""Cross-cutting edge cases and error-path coverage."""

import pytest

from repro.errors import (
    LayoutError,
    LibraryError,
    SearchError,
    SimulationError,
    SpecificationError,
    SynDCIMError,
    SynthesisError,
    TimingError,
)


def test_error_hierarchy():
    for exc in (
        SpecificationError,
        LibraryError,
        SynthesisError,
        TimingError,
        SearchError,
        LayoutError,
        SimulationError,
    ):
        assert issubclass(exc, SynDCIMError)


class TestTinySpecs:
    def test_smallest_legal_macro_compiles_fully(self, scl):
        """4x4 MCR=1 INT2 — the floor of every dimension."""
        from repro import SynDCIM
        from repro.spec import INT2, MacroSpec

        spec = MacroSpec(
            height=4,
            width=4,
            mcr=1,
            input_formats=(INT2,),
            weight_formats=(INT2,),
            mac_frequency_mhz=300.0,
        )
        result = SynDCIM(scl=scl).compile(spec)
        assert result.implementation.signoff_clean

    def test_smallest_macro_is_bit_exact(self):
        import numpy as np
        from macro_tb import MacroTestbench
        from repro.arch import MacroArchitecture
        from repro.spec import INT2, MacroSpec

        spec = MacroSpec(
            height=4, width=4, mcr=1,
            input_formats=(INT2,), weight_formats=(INT2,),
        )
        tb = MacroTestbench(spec, MacroArchitecture())
        rng = np.random.default_rng(9)
        for _ in range(4):
            w = rng.integers(-2, 2, size=(4, tb.model.n_groups))
            tb.load_weights(0, w, INT2)
            x = [int(v) for v in rng.integers(-2, 2, size=4)]
            assert tb.run_mac(x) == tb.expected(x)


class TestDegenerateInputs:
    def test_zero_weights_zero_result(self):
        import numpy as np
        from repro.sim.functional import DCIMMacroModel
        from repro.spec import INT4, MacroSpec

        spec = MacroSpec(
            height=8, width=8, mcr=1,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        m = DCIMMacroModel(spec)
        m.set_weights_int(0, np.zeros((8, 2), dtype=int), INT4)
        assert m.mac_cycles([7, -8, 3, 1, 0, -1, 5, 2]) == [0, 0]

    def test_single_lane_alignment(self):
        from repro.sim.formats import FPFields, align_group
        from repro.spec import FP8

        f = FPFields(sign=1, exponent=9, mantissa=5, fmt=FP8)
        aligned, emax = align_group([f])
        assert emax == 9
        assert aligned == [f.signed_significand()]

    def test_estimator_rejects_incompatible_arch(self, scl):
        from repro.arch import MacroArchitecture
        from repro.search.estimate import estimate_macro
        from repro.spec import MacroSpec

        spec = MacroSpec(mcr=4)
        with pytest.raises(SpecificationError):
            estimate_macro(spec, MacroArchitecture(mult_style="oai22"), scl)

    def test_scl_unknown_kind(self, scl):
        with pytest.raises(LibraryError):
            scl.lookup("bitline_booster", "x", 1)


class TestReportStability:
    def test_search_is_deterministic(self, paper_spec, scl):
        from repro.search import search

        a = search(paper_spec, scl)
        b = search(paper_spec, scl)
        assert [e.arch for e in a.frontier] == [e.arch for e in b.frontier]

    def test_estimate_is_pure(self, paper_spec, scl):
        from repro.arch import MacroArchitecture
        from repro.search.estimate import estimate_macro

        arch = MacroArchitecture()
        e1 = estimate_macro(paper_spec, arch, scl)
        e2 = estimate_macro(paper_spec, arch, scl)
        assert e1.energy_per_cycle_pj == e2.energy_per_cycle_pj
        assert e1.critical_path_ns == e2.critical_path_ns
