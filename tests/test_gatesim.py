"""Gate-level simulator semantics: levelization, forcing, master-slave
clocking."""

import pytest

from repro.errors import SimulationError
from repro.rtl.ir import Module, NetlistBuilder
from repro.sim.gatesim import GateSimulator
from repro.tech.stdcells import default_library

LIB = default_library()


def test_combinational_evaluation():
    b = NetlistBuilder("c")
    a, c = b.inputs("a")[0], b.inputs("c")[0]
    y = b.outputs("y")[0]
    n = b.xor2(a, c)
    b.cell("BUF_X2", A=n, Y=y)
    sim = GateSimulator(b.finish(), LIB)
    for av in (0, 1):
        for cv in (0, 1):
            sim.set_input("a", av)
            sim.set_input("c", cv)
            sim.evaluate()
            assert sim.net("y") == av ^ cv


def test_register_master_slave_semantics():
    """A two-stage shift register must shift exactly one position per
    edge — catching any read-new-value race."""
    b = NetlistBuilder("sr")
    d = b.inputs("d")[0]
    clk = b.inputs("clk")[0]
    q = b.outputs("q")[0]
    b.module.set_clocks([clk])
    s1 = b.dff(d, clk)
    s2 = b.dff(s1, clk)
    b.cell("BUF_X2", A=s2, Y=q)
    sim = GateSimulator(b.finish(), LIB)
    sim.reset_state()
    seen = []
    pattern = [1, 0, 1, 1, 0, 0, 1]
    for bit in pattern:
        sim.set_input("d", bit)
        sim.clock()
        seen.append(sim.net("q"))
    # q after edge i shows the bit applied at edge i-1 (two flops, but
    # observation happens after the same edge that loads stage 1).
    assert seen == [0] + pattern[:-1]


def test_force_overrides_driver():
    b = NetlistBuilder("f")
    a = b.inputs("a")[0]
    y = b.outputs("y")[0]
    n = b.inv(a)
    b.cell("BUF_X2", A=n, Y=y)
    m = b.finish()
    sim = GateSimulator(m, LIB)
    inv_net = n
    sim.set_input("a", 0)
    sim.force(inv_net, 0)  # would be 1 naturally
    sim.evaluate()
    assert sim.net("y") == 0
    sim.release(inv_net)
    sim.evaluate()
    assert sim.net("y") == 1


def test_memory_outputs_are_forceable():
    m = Module("mem")
    m.add_port("wl", "input")
    m.add_port("y", "output")
    m.add_net("rd")
    m.add_instance("cell", "DCIM6T", {"WL": "wl", "RD": "rd"})
    m.add_instance("buf", "BUF_X2", {"A": "rd", "Y": "y"})
    sim = GateSimulator(m, LIB)
    sim.force("rd", 1)
    sim.evaluate()
    assert sim.net("y") == 1
    sim.force("rd", 0)
    sim.evaluate()
    assert sim.net("y") == 0


def test_unknown_net_rejected():
    b = NetlistBuilder("x")
    b.inputs("a")
    y = b.outputs("y")[0]
    b.cell("BUF_X2", A="a", Y=y)
    sim = GateSimulator(b.finish(), LIB)
    with pytest.raises(SimulationError):
        sim.net("nope")
    with pytest.raises(SimulationError):
        sim.set_input("nope", 1)
    with pytest.raises(SimulationError):
        sim.force("nope", 1)


def test_bus_helpers():
    b = NetlistBuilder("bus")
    d = b.inputs("d", 4)
    q = b.outputs("q", 4)
    for i in range(4):
        b.cell("BUF_X2", A=d[i], Y=q[i])
    sim = GateSimulator(b.finish(), LIB)
    sim.set_bus("d", [1, 0, 1, 1])  # LSB first: value -3 as int4
    sim.evaluate()
    assert sim.bus("q", 4) == [1, 0, 1, 1]
    assert sim.bus_int("q", 4) == -3


def test_levelization_counts_all_cells(small_spec, default_arch):
    from repro.rtl.gen.macro import generate_macro

    mac, _ = generate_macro(small_spec, default_arch)
    flat = mac.flatten()
    sim = GateSimulator(flat, LIB)
    comb = sum(
        1
        for i in flat.instances
        if not LIB.cell(i.cell_name).is_sequential
        and not LIB.cell(i.cell_name).is_memory
    )
    assert len(sim._comb_order) == comb
