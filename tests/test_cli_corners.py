"""CLI coverage for ``--corners``: parsing, exit codes, and propagation
of the corner flag into batch/sweep worker jobs.

The propagation tests monkeypatch the batch engine's ``run_jobs`` so no
compilation happens — they assert on the *jobs* the CLI constructs,
which is exactly the boundary a worker process sees.
"""

from __future__ import annotations

import json

import pytest

from repro.batch.engine import BatchCompiler, BatchResult, BatchStats
from repro.cli import build_parser, main


def _capture_jobs(monkeypatch):
    """Stub BatchCompiler.run_jobs: record (engine, jobs), return an
    empty successful result."""
    captured = {}

    def fake_run_jobs(self, jobs):
        captured["engine"] = self
        captured["jobs"] = list(jobs)
        return BatchResult(records=[], stats=BatchStats(total=len(jobs)))

    monkeypatch.setattr(BatchCompiler, "run_jobs", fake_run_jobs)
    return captured


class TestParsing:
    def test_compile_accepts_corners(self):
        args = build_parser().parse_args(
            ["compile", "--corners", "SS,TT,FF"]
        )
        assert args.corners == "SS,TT,FF"

    def test_sweep_and_batch_accept_corners(self):
        args = build_parser().parse_args(["sweep", "--corners", "signoff3"])
        assert args.corners == "signoff3"
        args = build_parser().parse_args(
            ["batch", "--specs", "x.json", "--corners", "SS"]
        )
        assert args.corners == "SS"

    def test_search_has_no_corners_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--corners", "SS"])


class TestExitCodes:
    def test_unknown_corner_name_exits_1(self, capsys):
        assert main(["compile", "--corners", "SS,BOGUS"]) == 1
        err = capsys.readouterr().err
        assert "unknown signoff corner" in err
        assert "BOGUS" in err

    def test_empty_corner_set_exits_1(self, capsys):
        assert main(["compile", "--corners", ""]) == 1
        assert "at least one corner" in capsys.readouterr().err

    def test_whitespace_only_corner_list_exits_1(self, capsys):
        assert main(["sweep", "--corners", " , ,"]) == 1
        assert "at least one corner" in capsys.readouterr().err

    def test_bad_corners_fail_before_any_compilation(
        self, monkeypatch, capsys
    ):
        """Corner validation happens before the grid compiles (a typo
        must not cost an hours-long sweep)."""
        captured = _capture_jobs(monkeypatch)
        assert main(["sweep", "--corners", "XX"]) == 1
        assert "jobs" not in captured


class TestPropagation:
    def test_sweep_forwards_corners_into_jobs(self, monkeypatch, tmp_path):
        captured = _capture_jobs(monkeypatch)
        out = tmp_path / "results.jsonl"
        rc = main(
            [
                "sweep",
                "--height",
                "8",
                "--width",
                "8",
                "--formats",
                "INT4",
                "--corners",
                "SS,TT,FF",
                "--output",
                str(out),
            ]
        )
        assert rc == 0
        assert captured["engine"].corners == ("SS", "TT", "FF")
        jobs = captured["jobs"]
        assert jobs
        for job in jobs:
            assert job.corners == ("SS", "TT", "FF")
            assert job.payload()["options"]["corners"] == ["SS", "TT", "FF"]

    def test_sweep_preset_resolves_to_names(self, monkeypatch, tmp_path):
        captured = _capture_jobs(monkeypatch)
        main(
            [
                "sweep",
                "--height",
                "8",
                "--corners",
                "signoff3",
                "--output",
                str(tmp_path / "r.jsonl"),
            ]
        )
        assert captured["engine"].corners == ("SS", "TT", "FF")

    def test_batch_forwards_corners_into_jobs(self, monkeypatch, tmp_path):
        captured = _capture_jobs(monkeypatch)
        specs = tmp_path / "specs.json"
        specs.write_text(
            json.dumps(
                [
                    {
                        "height": 8,
                        "width": 8,
                        "mcr": 2,
                        "input_formats": [
                            {"name": "INT4", "kind": "int", "bits": 4}
                        ],
                        "weight_formats": [
                            {"name": "INT4", "kind": "int", "bits": 4}
                        ],
                        "mac_frequency_mhz": 400.0,
                    }
                ]
            )
        )
        rc = main(
            [
                "batch",
                "--specs",
                str(specs),
                "--corners",
                "SS,TT",
                "--output",
                str(tmp_path / "r.jsonl"),
            ]
        )
        assert rc == 0
        assert [job.corners for job in captured["jobs"]] == [("SS", "TT")]

    def test_no_corners_means_none(self, monkeypatch, tmp_path):
        captured = _capture_jobs(monkeypatch)
        main(
            [
                "sweep",
                "--height",
                "8",
                "--output",
                str(tmp_path / "r.jsonl"),
            ]
        )
        assert captured["engine"].corners is None
        assert all(job.corners is None for job in captured["jobs"])
