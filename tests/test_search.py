"""Multi-spec-oriented searcher: estimation, fixes, Algorithm 1, Pareto."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import MacroArchitecture
from repro.errors import SearchError
from repro.search.algorithm import MSOSearcher, search, seed_architectures
from repro.search.estimate import estimate_macro
from repro.search.fixes import (
    MAC_FIXES,
    OFU_FIXES,
    TUNING_MOVES,
    faster_adder,
    merge_sna_register,
    ofu_retime,
    split_column,
)
from repro.search.pareto import dominates, hypervolume_2d, pareto_front
from repro.search.space import build_search_space
from repro.spec import FP8, INT4, INT8, MacroSpec, PPAWeights


class TestEstimate:
    def test_segments_cover_pipeline(self, paper_spec, scl):
        est = estimate_macro(paper_spec, MacroArchitecture(), scl)
        names = [s.name for s in est.segments]
        assert "mac_front" in names
        assert any(n.startswith("ofu") for n in names)

    def test_merged_registers_merge_segments(self, paper_spec, scl):
        merged = estimate_macro(
            paper_spec, MacroArchitecture(reg_after_tree=False), scl
        )
        assert any("mac_front_sna" == s.name for s in merged.segments)

    def test_retiming_splits_ofu(self, paper_spec, scl):
        est = estimate_macro(
            paper_spec,
            MacroArchitecture(ofu_retimed=True, reg_after_sna=True),
            scl,
        )
        ofu_segs = [s for s in est.segments if s.name.startswith("ofu")]
        assert len(ofu_segs) == 2

    def test_csel_cuts_ofu_delay(self, paper_spec, scl):
        base = estimate_macro(paper_spec, MacroArchitecture(), scl)
        fast = estimate_macro(
            paper_spec, MacroArchitecture(ofu_csel=True), scl
        )
        base_ofu = max(
            s.delay_ns for s in base.segments if s.name.startswith("ofu")
        )
        fast_ofu = max(
            s.delay_ns for s in fast.segments if s.name.startswith("ofu")
        )
        assert fast_ofu < base_ofu
        assert fast.area_um2 > base.area_um2

    def test_column_split_shortens_mac_front(self, paper_spec, scl):
        base = estimate_macro(paper_spec, MacroArchitecture(), scl)
        split = estimate_macro(
            paper_spec, MacroArchitecture(column_split=2), scl
        )
        front = lambda e: [s for s in e.segments if "mac_front" in s.name][0]
        assert front(split).delay_ns < front(base).delay_ns

    def test_area_grows_with_array(self, scl):
        small = estimate_macro(
            MacroSpec(height=32, width=32), MacroArchitecture(), scl
        )
        big = estimate_macro(
            MacroSpec(height=128, width=128), MacroArchitecture(), scl
        )
        assert big.area_um2 > 3 * small.area_um2

    def test_power_includes_leakage(self, paper_spec, scl):
        est = estimate_macro(paper_spec, MacroArchitecture(), scl)
        assert est.power_mw > est.leakage_mw > 0

    def test_fp_mode_costs_more_energy(self, scl):
        spec = MacroSpec(
            height=64,
            width=64,
            input_formats=(INT4, FP8),
            weight_formats=(INT4, FP8),
        )
        int_mode = estimate_macro(
            spec, MacroArchitecture(), scl, mode=(INT4, INT4)
        )
        fp_mode = estimate_macro(
            spec, MacroArchitecture(), scl, mode=(FP8, FP8)
        )
        assert fp_mode.energy_per_cycle_pj > int_mode.energy_per_cycle_pj

    def test_throughput_math(self, scl):
        spec = MacroSpec(
            height=64,
            width=64,
            input_formats=(INT4,),
            weight_formats=(INT4,),
            mac_frequency_mhz=1000.0,
        )
        est = estimate_macro(spec, MacroArchitecture(), scl)
        # 64 rows * 16 words / 4 serial bits = 256 MACs/cycle
        assert est.macs_per_cycle == pytest.approx(256.0)
        assert est.tops == pytest.approx(0.512)


class TestFixes:
    def test_faster_adder_escalation_chain(self):
        spec = MacroSpec()
        arch = MacroArchitecture(tree_style="cmp42")
        a1 = faster_adder(spec, arch)
        assert a1.tree_style == "mixed" and a1.tree_fa_levels == 1
        a2 = faster_adder(spec, a1)
        assert a2.tree_fa_levels == 2
        a3 = faster_adder(spec, faster_adder(spec, a2) or a2)
        # saturates at 3
        assert faster_adder(spec, MacroArchitecture(tree_style="mixed", tree_fa_levels=3)) is None

    def test_split_column_bounded(self):
        spec = MacroSpec(height=16, width=16)
        arch = MacroArchitecture(column_split=4)
        assert split_column(spec, arch) is None

    def test_ofu_retime_requires_register(self):
        spec = MacroSpec()
        out = ofu_retime(spec, MacroArchitecture(reg_after_sna=False))
        assert out.reg_after_sna and out.ofu_retimed

    def test_merge_respects_retiming(self):
        spec = MacroSpec()
        held = MacroArchitecture(ofu_retimed=True, reg_after_sna=True)
        assert merge_sna_register(spec, held) is None
        free = MacroArchitecture(ofu_retimed=False, reg_after_sna=True)
        assert merge_sna_register(spec, free).reg_after_sna is False

    def test_all_moves_return_valid_archs(self, paper_spec):
        for name, move in MAC_FIXES + OFU_FIXES + TUNING_MOVES:
            result = move(paper_spec, MacroArchitecture())
            if result is not None:
                result.validate_against(paper_spec)


class TestPareto:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((1, 3), (2, 2))
        assert not dominates((1, 1), (1, 1))

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 10), st.floats(0.1, 10)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_front_is_mutually_nondominated(self, pts):
        front = pareto_front(pts, lambda p: p)
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)
        # every point is dominated by or equal to someone on the front
        for p in pts:
            assert any(
                dominates(f, p) or tuple(f) == tuple(p) for f in front
            )

    def test_hypervolume(self):
        hv = hypervolume_2d([(1.0, 1.0)], reference=(2.0, 2.0))
        assert hv == pytest.approx(1.0)
        hv2 = hypervolume_2d([(1.0, 1.5), (1.5, 1.0)], reference=(2.0, 2.0))
        assert hv2 == pytest.approx(0.75)


class TestAlgorithm:
    def test_search_meets_timing_on_paper_spec(self, paper_spec, scl):
        result = search(paper_spec, scl)
        assert result.frontier, "paper spec must be feasible"
        assert all(e.met for e in result.frontier)

    def test_frontier_is_nondominated(self, paper_spec, scl):
        result = search(paper_spec, scl)
        objs = [(e.power_mw, e.area_um2) for e in result.frontier]
        for i, a in enumerate(objs):
            for j, b in enumerate(objs):
                if i != j:
                    assert not dominates(a, b)

    def test_fix_counts_populated(self, paper_spec, scl):
        result = search(paper_spec, scl)
        assert result.fix_counts, "a violated seed must trigger fixes"

    def test_ppa_weights_steer_selection(self, paper_spec, scl):
        result = search(paper_spec, scl)
        if len(result.frontier) < 2:
            pytest.skip("frontier collapsed to one point")
        power_pick = result.select(PPAWeights(power=10, performance=1, area=1))
        area_pick = result.select(PPAWeights(power=1, performance=1, area=10))
        assert power_pick.power_mw <= area_pick.power_mw
        assert area_pick.area_um2 <= power_pick.area_um2

    def test_easy_spec_needs_no_big_hammer(self, scl):
        easy = MacroSpec(
            height=32,
            width=32,
            input_formats=(INT4,),
            weight_formats=(INT4,),
            mac_frequency_mhz=200.0,
        )
        result = search(easy, scl)
        assert result.frontier
        assert all(e.arch.column_split == 1 for e in result.frontier)

    def test_impossible_spec_reports_infeasible(self, scl):
        crazy = MacroSpec(
            height=256,
            width=64,
            input_formats=(INT8,),
            weight_formats=(INT8,),
            mac_frequency_mhz=5000.0,
        )
        result = search(crazy, scl)
        with pytest.raises(SearchError):
            result.select()

    def test_seeds_are_diverse_and_valid(self, paper_spec):
        seeds = seed_architectures(paper_spec)
        assert len(seeds) >= 4
        assert len({a.knob_summary() for _, a in seeds}) == len(seeds)

    def test_oai22_seed_dropped_for_deep_mcr(self):
        spec = MacroSpec(mcr=4)
        assert all(
            a.mult_style != "oai22" for _, a in seed_architectures(spec)
        )

    def test_trace_records_moves(self, paper_spec, scl):
        result = MSOSearcher(scl).search(paper_spec)
        moves = {t.move for t in result.trace}
        assert "seed" in moves
        assert moves & {
            "faster_adder",
            "ofu_retime",
            "ofu_faster_adder",
            "column_split",
            "ofu_pipeline",
        }


class TestSpace:
    def test_space_size_counts(self):
        spec = MacroSpec()
        space = build_search_space(spec)
        assert space.size > 100
        assert "search space" in space.describe()

    def test_space_respects_mcr(self):
        space = build_search_space(MacroSpec(mcr=4))
        assert "oai22" not in space.mult_styles
