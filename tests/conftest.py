"""Shared fixtures: cell library, process, subcircuit library, specs.

The subcircuit library takes a few seconds to characterize, so it is
built once per session.  Small specs keep netlist-level tests fast while
still exercising every datapath feature (MCR banking, OFU fusion, FP
alignment).
"""

from __future__ import annotations

import pytest

from repro.arch import MacroArchitecture
from repro.spec import FP4, FP8, INT4, INT8, MacroSpec
from repro.tech.process import GENERIC_40NM
from repro.tech.stdcells import default_library


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def process():
    return GENERIC_40NM


@pytest.fixture(scope="session")
def scl():
    from repro.scl.library import default_scl

    return default_scl()


@pytest.fixture
def small_spec():
    """8x8, MCR=2, INT4: the smallest spec with all datapath features."""
    return MacroSpec(
        height=8,
        width=8,
        mcr=2,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=400.0,
    )


@pytest.fixture
def paper_spec():
    """The Fig. 8 specification (H=W=64, MCR=2, INT4/8 + FP4/8, 800 MHz)."""
    return MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8, FP4, FP8),
        weight_formats=(INT4, INT8, FP4, FP8),
        mac_frequency_mhz=800.0,
    )


@pytest.fixture
def default_arch():
    return MacroArchitecture()
