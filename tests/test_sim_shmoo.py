"""Shmoo engine and measured-efficiency model."""

import pytest

from repro.errors import SimulationError
from repro.sim.shmoo import measure_efficiency, run_shmoo
from repro.tech.process import GENERIC_40NM


class TestShmoo:
    def _grid(self, crit=0.9, sigma=0.0):
        voltages = [0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2]
        freqs = [100 * i for i in range(1, 14)]
        return run_shmoo(crit, GENERIC_40NM, voltages, freqs, sigma=sigma)

    def test_pass_region_monotone_in_voltage(self):
        res = self._grid()
        # at a fixed frequency, passing at V implies passing at V' > V
        for j in range(len(res.frequencies_mhz)):
            col = [res.passed[i][j] for i in range(len(res.voltages))]
            # voltages ascending; once True stays True
            seen = False
            for p in col:
                if seen:
                    assert p
                seen = seen or p

    def test_pass_region_monotone_in_frequency(self):
        res = self._grid()
        for i in range(len(res.voltages)):
            row = res.passed[i]
            # frequencies ascending; once False stays False
            failed = False
            for p in row:
                if failed:
                    assert not p
                failed = failed or not p

    def test_max_frequency_tracks_delay_scale(self):
        res = self._grid()
        assert res.max_frequency_mhz(1.2) > res.max_frequency_mhz(0.7) * 2.5

    def test_deterministic_with_seed(self):
        a = self._grid(sigma=0.05)
        b = self._grid(sigma=0.05)
        assert a.passed == b.passed

    def test_render_shape(self):
        res = self._grid()
        text = res.render()
        lines = text.splitlines()
        assert len(lines) == len(res.voltages) + 1
        assert "P" in text and "." in text

    def test_rejects_bad_critical_path(self):
        with pytest.raises(SimulationError):
            run_shmoo(0.0, GENERIC_40NM, [0.9], [100.0])


class TestMeasuredEfficiency:
    def _measure(self, **kw):
        args = dict(
            energy_per_mac_cycle_pj=120.0,
            leakage_mw=0.2,
            critical_path_ns=1.0,
            area_um2=112000.0,
            process=GENERIC_40NM,
            vdd=0.7,
            height=64,
            width=64,
            input_bits=4,
            weight_bits=4,
        )
        args.update(kw)
        return measure_efficiency(**args)

    def test_sparsity_boosts_tops_per_watt(self):
        dense = self._measure()
        sparse = self._measure(input_sparsity=0.875, weight_sparsity=0.5)
        assert sparse.tops_per_watt > 5 * dense.tops_per_watt

    def test_low_voltage_more_efficient_but_slower(self):
        lo = self._measure(vdd=0.7)
        hi = self._measure(vdd=1.2)
        assert lo.tops_per_watt > hi.tops_per_watt
        assert hi.frequency_mhz > lo.frequency_mhz

    def test_1b_scaling(self):
        m = self._measure()
        assert m.tops_per_watt_1b == pytest.approx(16 * m.tops_per_watt)
        assert m.tops_per_mm2_1b == pytest.approx(16 * m.tops_per_mm2)

    def test_sparsity_validated(self):
        with pytest.raises(SimulationError):
            self._measure(input_sparsity=1.0)
