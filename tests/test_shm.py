"""Shared-memory publish/attach lifecycle (see :mod:`repro.shm`).

Covers the blob framing and adoption rules, SCL and NetView tensor
round trips (bit-identical, cross-process content-hash agreement), and
the leak guarantees: crashed workers, watchdog-killed pools, and full
chaos sweeps must leave ``/dev/shm`` clean and must not provoke
``resource_tracker`` "leaked shared_memory" complaints (treated as
failures here, not noise).
"""

import os
import subprocess
import sys
import textwrap
from multiprocessing import shared_memory

import pytest

from repro.batch.engine import _worker_initializer
from repro.errors import BatchError
from repro.rtl.ir import Module
from repro.rtl.netview import NetView
from repro.shm import (
    attach_blob,
    detach_all,
    netview_content_key,
    publish_blob,
    publish_net_view,
    published_segments,
    try_attach_net_view,
    unlink_all,
)
from repro.shm.blob import SEGMENT_PREFIX, _wrap
from repro.shm.netview import install_attachments
from repro.tech.stdcells import default_library

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _shm_listing():
    try:
        return sorted(
            f
            for f in os.listdir("/dev/shm")
            if f.startswith(SEGMENT_PREFIX)
        )
    except FileNotFoundError:  # non-Linux: nothing to sweep
        return []


@pytest.fixture(autouse=True)
def _clean_segments():
    """Every test starts and ends with this process detached and its
    published segments unlinked; the netview probe is disarmed."""
    yield
    install_attachments(())
    unlink_all()
    detach_all()


def _run_child(body: str, env_extra=None) -> subprocess.CompletedProcess:
    """Run a python snippet in a fresh interpreter with src importable."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULT_SEED", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(body)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


# -- blob framing and adoption ----------------------------------------------


class TestBlob:
    def test_round_trip(self):
        payload = b"the quick brown fox" * 100
        name = publish_blob("repro-test-roundtrip", payload)
        assert name in published_segments()
        view = attach_blob(name)
        assert view is not None and bytes(view) == payload

    def test_rejects_unprefixed_name(self):
        with pytest.raises(BatchError, match="must start with"):
            publish_blob("evil-name", b"x")

    def test_publish_same_name_twice_is_noop(self):
        publish_blob("repro-test-idem", b"abc")
        publish_blob("repro-test-idem", b"abc")
        assert published_segments().count("repro-test-idem") == 1

    def test_missing_segment_attaches_as_none(self):
        assert attach_blob("repro-test-does-not-exist") is None

    def test_garbage_segment_attaches_as_none(self):
        shm = shared_memory.SharedMemory(
            name="repro-test-garbage", create=True, size=64
        )
        try:
            shm.buf[:8] = b"NOTMAGIC"
            assert attach_blob("repro-test-garbage") is None
        finally:
            detach_all()
            shm.unlink()
            shm.close()

    def test_truncated_blob_attaches_as_none(self):
        blob = _wrap(b"p" * 100)
        shm = shared_memory.SharedMemory(
            name="repro-test-trunc", create=True, size=len(blob) - 40
        )
        try:
            shm.buf[:] = blob[: len(blob) - 40]
            assert attach_blob("repro-test-trunc") is None
        finally:
            detach_all()
            shm.unlink()
            shm.close()

    def test_stale_matching_segment_is_adopted(self):
        """A segment left by a hard-killed previous parent (same
        content) is adopted, not duplicated, and unlinked at exit."""
        payload = b"stale but identical"
        child = _run_child(
            """
            import os
            from multiprocessing import resource_tracker
            from repro.shm import publish_blob
            publish_blob("repro-test-stale", %r)
            # A SIGKILLed parent takes its resource tracker with it;
            # unregister + hard-exit reproduces that: no atexit unlink,
            # no tracker cleanup -> the segment survives us.
            resource_tracker.unregister("/repro-test-stale", "shared_memory")
            os._exit(0)
            """
            % payload
        )
        assert child.returncode == 0, child.stderr
        assert "repro-test-stale" in _shm_listing()
        name = publish_blob("repro-test-stale", payload)
        view = attach_blob(name)
        assert view is not None and bytes(view) == payload
        unlink_all()
        assert "repro-test-stale" not in _shm_listing()

    def test_stale_mismatched_segment_is_replaced(self):
        child = _run_child(
            """
            import os
            from multiprocessing import resource_tracker
            from repro.shm import publish_blob
            publish_blob("repro-test-swap", b"old content")
            resource_tracker.unregister("/repro-test-swap", "shared_memory")
            os._exit(0)
            """
        )
        assert child.returncode == 0, child.stderr
        name = publish_blob("repro-test-swap", b"new content")
        view = attach_blob(name)
        assert view is not None and bytes(view) == b"new content"


# -- SCL tensors over shm ---------------------------------------------------


class TestSclShm:
    def test_child_attaches_bit_identical_library(self):
        """The child re-derives the segment name from its own
        fingerprints (content-hash agreement) and must see exactly the
        records the parent published."""
        from repro.scl.library import KINDS, default_scl
        from repro.shm.scl import publish_default_scl

        scl = default_scl()
        name = publish_default_scl()
        assert name is not None and name.startswith("repro-scl-")
        child = _run_child(
            """
            import json
            from repro.scl.library import KINDS, default_scl_source
            from repro.shm.scl import attach_default_scl
            scl = attach_default_scl()
            assert scl is not None, "attach missed"
            assert default_scl_source() == "shm"
            out = {}
            for kind in KINDS:
                for (variant, dim), rec in scl.table(kind).items():
                    out["%s/%s/%d" % (kind, variant, dim)] = [
                        rec.delay_ns, rec.energy_pj, rec.area_um2,
                        rec.leakage_mw, rec.cells,
                        list(rec.stage_delays_ns),
                    ]
            print(json.dumps(out))
            """
        )
        assert child.returncode == 0, child.stderr
        import json

        got = json.loads(child.stdout)
        want = {}
        for kind in KINDS:
            for (variant, dim), rec in scl.table(kind).items():
                want[f"{kind}/{variant}/{dim}"] = [
                    rec.delay_ns,
                    rec.energy_pj,
                    rec.area_um2,
                    rec.leakage_mw,
                    rec.cells,
                    list(rec.stage_delays_ns),
                ]
        assert got == want  # float64 round-trips bit-exactly

    def test_attach_without_publisher_misses(self):
        child = _run_child(
            """
            from repro.shm.scl import attach_default_scl
            from repro.scl.library import default_scl_source
            assert attach_default_scl() is None
            assert default_scl_source() is None
            """
        )
        assert child.returncode == 0, child.stderr


# -- NetView tensors over shm -----------------------------------------------


def _toy_module(n: int = 40, name: str = "toy") -> Module:
    """A small flat module: n inverter/DFF pairs on a shared clock."""
    m = Module(name)
    m.add_net("clk")
    for i in range(n):
        m.add_net(f"d{i}")
        m.add_net(f"q{i}")
        m.add_instance(f"inv{i}", "INV_X1", {"A": f"q{i}", "Y": f"d{i}"})
        m.add_instance(
            f"ff{i}", "DFF_X1", {"D": f"d{i}", "CK": "clk", "Q": f"q{i}"}
        )
    return m


class TestNetViewShm:
    def test_hydrated_view_equals_fresh_build(self):
        lib = default_library()
        module = _toy_module()
        fresh = NetView(module, lib)
        name = publish_net_view(fresh)
        assert name is not None and name.startswith("repro-nv-")
        install_attachments([name])
        view = try_attach_net_view(module, lib)
        assert view is not None
        assert view.net_names == fresh.net_names
        assert view.net_id == fresh.net_id
        assert view.in_ids == fresh.in_ids
        assert view.out_ids == fresh.out_ids
        assert [c.name for c in view.cells] == [
            c.name for c in fresh.cells
        ]
        import numpy as np

        by_name = {g.cell.name: g for g in view.groups}
        for g in fresh.groups:
            h = by_name[g.cell.name]
            assert np.array_equal(h.inst_idx, g.inst_idx)
            assert np.array_equal(h.in_ids, g.in_ids)
            assert np.array_equal(h.out_ids, g.out_ids)

    def test_other_module_misses(self):
        lib = default_library()
        module = _toy_module()
        install_attachments([publish_net_view(NetView(module, lib))])
        other = _toy_module(n=41, name="other")
        assert try_attach_net_view(other, lib) is None

    def test_same_shape_different_wiring_misses(self):
        """Same name, same instance census, permuted connectivity: the
        spot check must reject the published tables."""
        lib = default_library()
        module = _toy_module()
        install_attachments([publish_net_view(NetView(module, lib))])
        twisted = Module("toy")
        twisted.add_net("clk")
        n = 40
        for i in range(n):
            twisted.add_net(f"d{i}")
            twisted.add_net(f"q{i}")
        for i in range(n):
            j = (i + 1) % n  # rotate the feedback pairing
            twisted.add_instance(
                f"inv{i}", "INV_X1", {"A": f"q{j}", "Y": f"d{i}"}
            )
            twisted.add_instance(
                f"ff{i}",
                "DFF_X1",
                {"D": f"d{i}", "CK": "clk", "Q": f"q{i}"},
            )
        assert try_attach_net_view(twisted, lib) is None

    def test_content_key_is_deterministic_across_processes(self):
        lib = default_library()
        module = _toy_module()
        key = netview_content_key(module, lib)
        child = _run_child(
            """
            import sys
            sys.path.insert(0, %r)
            from repro.shm import netview_content_key
            from repro.tech.stdcells import default_library
            from test_shm import _toy_module
            print(netview_content_key(_toy_module(), default_library()))
            """
            % os.path.dirname(os.path.abspath(__file__))
        )
        assert child.returncode == 0, child.stderr
        assert child.stdout.strip() == key

    def test_worker_initializer_arms_attachments(self):
        lib = default_library()
        module = _toy_module()
        name = publish_net_view(NetView(module, lib))
        _worker_initializer((name,))
        from repro.rtl.netview import net_view
        from repro.shm.netview import attachments_installed

        assert attachments_installed() == [name]
        assert net_view(module, lib) is not None


# -- leak guarantees under process death ------------------------------------


def _assert_clean(child: subprocess.CompletedProcess) -> None:
    assert child.returncode == 0, child.stderr
    assert _shm_listing() == [], "leaked segments: %s" % _shm_listing()
    for needle in ("resource_tracker", "leaked shared_memory"):
        assert needle not in child.stderr, child.stderr


_BATCH_PROLOGUE = """
import os, sys
from repro.batch import BatchCompiler, CompileJob, RetryPolicy
from repro.spec import INT4, MacroSpec
specs = [
    MacroSpec(height=8, width=8, mcr=2, input_formats=(INT4,),
              weight_formats=(INT4,), mac_frequency_mhz=200.0 + 25.0 * i)
    for i in range(4)
]
"""


class TestPoolLeaks:
    """Each scenario runs a real worker pool in a fresh interpreter and
    then sweeps ``/dev/shm``: the parent's atexit unlink must win no
    matter how the pool died, and no resource_tracker warning may
    appear on stderr."""

    def test_crashing_workers_leave_no_leaks(self, tmp_path):
        child = _run_child(
            _BATCH_PROLOGUE
            + textwrap.dedent("""
            from repro.shm import published_segments
            engine = BatchCompiler(jobs=2, use_cache=False,
                                   retry=RetryPolicy(max_attempts=3,
                                                     backoff_s=0.0))
            batch = engine.compile_specs(specs, implement=False)
            assert published_segments(), "parent published nothing"
            assert all(r["status"] == "ok" for r in batch.records)
            """),
            env_extra={
                "REPRO_FAULTS": "crash:1.0:first",
                "REPRO_FAULT_SEED": "3",
            },
        )
        _assert_clean(child)

    def test_watchdog_killed_pool_leaves_no_leaks(self, tmp_path):
        child = _run_child(
            _BATCH_PROLOGUE
            + textwrap.dedent("""
            engine = BatchCompiler(jobs=2, cache_dir=%r,
                                   job_timeout_s=1.0,
                                   retry=RetryPolicy(max_attempts=2,
                                                     backoff_s=0.0))
            batch = engine.compile_specs(specs[:2], implement=False)
            assert len(batch.records) == 2  # hang -> timeout, not a wedge
            """)
            % str(tmp_path / "cache"),
            env_extra={
                "REPRO_FAULTS": "hang:1.0",
                "REPRO_FAULT_HANG_S": "30.0",
                "REPRO_FAULT_SEED": "0",
            },
        )
        _assert_clean(child)

    def test_chaos_sweep_leaves_no_leaks(self, tmp_path):
        child = _run_child(
            _BATCH_PROLOGUE
            + textwrap.dedent("""
            engine = BatchCompiler(jobs=4, cache_dir=%r,
                                   job_timeout_s=2.0,
                                   retry=RetryPolicy(max_attempts=3,
                                                     backoff_s=0.0))
            batch = engine.compile_specs(specs, implement=False)
            assert len(batch.records) == len(specs)
            """)
            % str(tmp_path / "chaos"),
            env_extra={
                "REPRO_FAULTS": "crash:0.3,hang:0.1,corrupt_cache:0.1",
                "REPRO_FAULT_HANG_S": "30.0",
                "REPRO_FAULT_SEED": "11",
            },
        )
        _assert_clean(child)

    def test_workers_resolve_scl_from_shm(self):
        """Pool workers must see ``default_scl_source() == "shm"`` —
        the attach path, not a rebuild — proving the zero-copy publish
        actually carries."""
        child = _run_child(
            _BATCH_PROLOGUE
            + textwrap.dedent("""
            from repro.batch.engine import BatchCompiler
            import test_probe_shm  # noqa: F401  (picklable probe fn)
            engine = BatchCompiler(jobs=2, use_cache=False)
            sources = engine.map(test_probe_shm.scl_source, [0, 1, 2, 3])
            assert sources == ["shm"] * 4, sources
            """),
            env_extra={
                "PYTHONPATH": SRC
                + os.pathsep
                + os.path.dirname(os.path.abspath(__file__))
            },
        )
        _assert_clean(child)
