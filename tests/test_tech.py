"""Technology substrate: process scaling, standard cells,
characterization, Liberty/LEF views."""

import math

import pytest

from repro.errors import LibraryError, SpecificationError
from repro.tech.characterization import (
    NLDMTable,
    arc_delay_ns,
    arc_slew_ns,
    characterize_cell,
    characterize_library,
)
from repro.tech.lef import parse_lef, view_for_cell, write_lef
from repro.tech.liberty import parse_liberty, write_liberty
from repro.tech.process import CORNERS, GENERIC_40NM, Process
from repro.tech.stdcells import TimingArc, default_library


class TestProcess:
    def test_delay_scale_identity_at_nominal(self):
        p = GENERIC_40NM
        assert p.delay_scale(p.vdd_nominal) == pytest.approx(1.0)

    def test_delay_scale_monotone_decreasing_in_vdd(self):
        p = GENERIC_40NM
        scales = [p.delay_scale(v) for v in (0.7, 0.8, 0.9, 1.0, 1.1, 1.2)]
        assert all(a > b for a, b in zip(scales, scales[1:]))

    def test_shmoo_endpoint_ratio(self):
        """The calibration target: fmax(1.2V)/fmax(0.7V) ~ 3.7 (paper:
        1.1 GHz vs 300 MHz)."""
        p = GENERIC_40NM
        ratio = p.delay_scale(0.7) / p.delay_scale(1.2)
        assert 3.0 < ratio < 4.5

    def test_energy_scale_quadratic(self):
        p = GENERIC_40NM
        assert p.energy_scale(1.8 * p.vdd_nominal / 2) == pytest.approx(
            0.81, rel=1e-6
        )

    def test_out_of_range_vdd_rejected(self):
        with pytest.raises(SpecificationError):
            GENERIC_40NM.delay_scale(0.2)

    def test_max_frequency(self):
        p = GENERIC_40NM
        f = p.max_frequency_mhz(1.0, p.vdd_nominal)
        assert f == pytest.approx(1000.0)
        assert p.max_frequency_mhz(1.0, 1.2) > f

    def test_corners_exist(self):
        assert CORNERS["SS"].delay_factor > 1.0 > CORNERS["FF"].delay_factor

    def test_wire_delay_positive_and_growing(self):
        p = GENERIC_40NM
        assert p.wire_delay_ns(100.0, 2.0) > p.wire_delay_ns(10.0, 2.0) > 0

    def test_invalid_process_rejected(self):
        with pytest.raises(SpecificationError):
            Process(vth=0.7, vdd_min=0.6)


class TestStdCells:
    def test_library_has_core_cells(self, library):
        for name in (
            "INV_X1",
            "NAND2_X1",
            "XOR2_X1",
            "FA_X1",
            "HA_X1",
            "CMP42_X1",
            "DFF_X1",
            "TGMUX2_X1",
            "PGMUX2_X1",
            "OAI22_X1",
            "DCIM6T",
            "SRAM6T",
        ):
            assert name in library

    def test_unknown_cell_raises(self, library):
        with pytest.raises(LibraryError):
            library.cell("NAND9_X9")

    def test_compressor_trades(self, library):
        """The trade the mixed CSA exploits: one compressor is smaller
        and lower-energy than the two FAs it replaces, but slower."""
        fa = library.cell("FA_X1")
        cmp42 = library.cell("CMP42_X1")
        assert cmp42.area_um2 < 2 * fa.area_um2
        assert sum(cmp42.internal_energy_fj.values()) < 2 * sum(
            fa.internal_energy_fj.values()
        )
        assert (
            cmp42.arc("A", "S").d0_ns > fa.arc("A", "S").d0_ns
        ), "compressor sum path must be slower than a full adder's"

    def test_carry_faster_than_sum(self, library):
        """Fig. 4's reordering premise."""
        for cell_name, sum_pin, carry_pin in (
            ("FA_X1", "S", "CO"),
            ("CMP42_X1", "S", "CY"),
        ):
            cell = library.cell(cell_name)
            assert (
                cell.worst_arc_to(carry_pin).d0_ns
                < cell.worst_arc_to(sum_pin).d0_ns
            )

    def test_pg_mux_smaller_but_slower_than_tg(self, library):
        pg = library.cell("PGMUX2_X1")
        tg = library.cell("TGMUX2_X1")
        assert pg.area_um2 < tg.area_um2
        assert pg.arc("D0", "Y").d0_ns > tg.arc("D0", "Y").d0_ns

    def test_logic_functions(self, library):
        fa = library.cell("FA_X1")
        assert fa.evaluate({"A": 1, "B": 1, "CI": 1}) == {"S": 1, "CO": 1}
        assert fa.evaluate({"A": 1, "B": 0, "CI": 0}) == {"S": 1, "CO": 0}
        cmp42 = library.cell("CMP42_X1")
        for a in (0, 1):
            for b_ in (0, 1):
                for c in (0, 1):
                    for d in (0, 1):
                        for ci in (0, 1):
                            out = cmp42.evaluate(
                                {"A": a, "B": b_, "C": c, "D": d, "CI": ci}
                            )
                            total = (
                                out["S"]
                                + 2 * out["CY"]
                                + 2 * out["CO"]
                            )
                            assert total == a + b_ + c + d + ci

    def test_arcs_reference_real_pins(self, library):
        for cell in library:
            for arc in cell.arcs:
                assert arc.output_pin in cell.outputs
                if not cell.is_sequential:
                    assert arc.input_pin in cell.input_caps_ff

    def test_memory_cells_flagged(self, library):
        assert library.cell("DCIM6T").is_memory
        assert not library.cell("FA_X1").is_memory
        assert library.cell("SRAM6T").area_um2 < library.cell("DCIM6T").area_um2


class TestCharacterization:
    def test_delay_equation_monotone(self):
        arc = TimingArc("A", "Y", 0.02, 1.5)
        d1 = arc_delay_ns(arc, 0.01, 1.0)
        d2 = arc_delay_ns(arc, 0.01, 10.0)
        d3 = arc_delay_ns(arc, 0.10, 10.0)
        assert d1 < d2 < d3

    def test_nldm_bilinear_interpolation(self):
        table = NLDMTable(
            slews_ns=(0.0, 1.0),
            loads_ff=(0.0, 2.0),
            values=((0.0, 2.0), (1.0, 3.0)),
        )
        assert table.lookup(0.5, 1.0) == pytest.approx(1.5)
        assert table.lookup(0.0, 0.0) == pytest.approx(0.0)
        # Clamped extrapolation.
        assert table.lookup(5.0, 5.0) == pytest.approx(3.0)

    def test_nldm_rejects_bad_axes(self):
        with pytest.raises(LibraryError):
            NLDMTable((1.0, 0.5), (0.0,), ((0.0,), (0.0,)))

    def test_characterized_cell_matches_equation(self, library, process):
        cell = library.cell("NAND2_X1")
        cc = characterize_cell(cell, process)
        arc = cell.arc("A", "Y")
        for slew, load in ((0.01, 1.0), (0.04, 8.0)):
            assert cc.delay_ns("A", "Y", slew, load) == pytest.approx(
                arc_delay_ns(arc, slew, load), rel=1e-6
            )

    def test_voltage_corner_scales_delay(self, library, process):
        cell = library.cell("INV_X1")
        nom = characterize_cell(cell, process)
        low = characterize_cell(cell, process, vdd=0.7)
        d_nom = nom.delay_ns("A", "Y", 0.01, 2.0)
        d_low = low.delay_ns("A", "Y", 0.01, 2.0)
        assert d_low / d_nom == pytest.approx(
            process.delay_scale(0.7), rel=1e-6
        )


class TestViews:
    def test_liberty_roundtrip(self, library, process):
        cells = characterize_library(
            [library.cell("INV_X1"), library.cell("FA_X1")], process
        )
        text = write_liberty("repro40", cells, process.vdd_nominal)
        parsed = parse_liberty(text)
        assert parsed["INV_X1"]["area"] == pytest.approx(0.8)
        assert parsed["FA_X1"]["pin_caps"]["CI"] == pytest.approx(1.2)

    def test_liberty_contains_tables(self, library, process):
        cells = characterize_library([library.cell("NAND2_X1")], process)
        text = write_liberty("x", cells, 0.9)
        assert "index_1" in text and "values" in text
        assert "cell_rise" in text

    def test_lef_roundtrip(self, library):
        views = {
            n: view_for_cell(library.cell(n)) for n in ("INV_X1", "DFF_X1")
        }
        text = write_lef(views)
        sizes = parse_lef(text)
        assert sizes["INV_X1"][1] == pytest.approx(1.8)
        assert sizes["DFF_X1"][0] == pytest.approx(4.6 / 1.8, rel=1e-3)

    def test_lef_pins_on_boundary(self, library):
        view = view_for_cell(library.cell("FA_X1"))
        for pin in view.pins:
            assert 0.0 <= pin.x_um <= view.width_um + 1e-9
            assert 0.0 <= pin.y_um <= view.height_um + 1e-9
