"""Compile service end-to-end: CompileOptions canonicalization, the
ResultStore backends (budgeted LRU eviction, quarantine accounting),
the JobQueue scheduler (dedup, priorities, cancellation) and the live
HTTP API — including the acceptance criteria of the service PR: two
concurrent clients submitting the same sweep compile each content hash
exactly once, a cache-hit fetch is byte-identical to the engine's
record, and an injected worker crash lands as a terminal status
instead of a hung client.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.batch.cache import (
    CACHE_SCHEMA_VERSION,
    MemoryResultStore,
    ResultCache,
)
from repro.batch.engine import BatchCompiler
from repro.batch.resilience import list_journals, prune_journals
from repro.errors import ServiceError, SpecificationError
from repro.options import (
    DEFAULT_VERIFY_VECTORS,
    PPA_PRESETS,
    CompileOptions,
)
from repro.service.client import ServiceClient
from repro.service.queue import JobQueue
from repro.service.server import create_server
from repro.spec import INT4, MacroSpec


def fast_spec(**overrides) -> MacroSpec:
    """A spec whose search-only compile takes well under a second."""
    base = dict(
        height=8,
        width=8,
        mcr=1,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=400.0,
    )
    base.update(overrides)
    return MacroSpec(**base)


#: Search-only: the working options for every compute-bearing test.
FAST = CompileOptions(implement=False)


# -- CompileOptions: one canonical spelling ----------------------------------


class TestCompileOptions:
    def test_corner_spellings_converge(self):
        from repro.signoff.corners import CornerSet, parse_corners

        comma = CompileOptions(corners="SS,TT,FF")
        listed = CompileOptions(corners=["SS", "TT", "FF"])
        cs = CompileOptions(
            corners=CornerSet.from_names(("SS", "TT", "FF"), name="t")
        )
        assert comma == listed == cs
        assert comma.corners == ("SS", "TT", "FF")
        preset = CompileOptions(corners="signoff3")
        assert preset.corners == parse_corners("signoff3").names

    def test_equal_spellings_share_one_job_key(self):
        spec = fast_spec()
        a = CompileOptions(corners="SS,TT,FF", seed=7)
        b = CompileOptions(corners=("SS", "TT", "FF"), seed=7)
        assert a.compile_job(spec).key() == b.compile_job(spec).key()

    def test_execution_policy_is_not_part_of_the_key(self):
        spec = fast_spec()
        plain = CompileOptions()
        tuned = CompileOptions(job_timeout_s=5.0, retries=4)
        assert plain.compile_job(spec).key() == tuned.compile_job(spec).key()

    def test_rejects_bad_values(self):
        with pytest.raises(SpecificationError):
            CompileOptions(vt="turbo")
        with pytest.raises(SpecificationError):
            CompileOptions(verify_vectors=0)
        with pytest.raises(SpecificationError):
            CompileOptions(corners="SS,NOPE")
        with pytest.raises(SpecificationError):
            CompileOptions(job_timeout_s=-1.0)
        with pytest.raises(SpecificationError):
            CompileOptions(retries=-1)
        with pytest.raises(SpecificationError):
            CompileOptions(input_sparsity=1.5)

    def test_dict_roundtrip(self):
        options = CompileOptions(
            corners="typical", vt="auto", seed=3, verify=True,
            job_timeout_s=12.0, retries=2,
        )
        assert CompileOptions.from_dict(options.to_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecificationError, match="vectors_verify"):
            CompileOptions.from_dict({"vectors_verify": 9})

    def test_retry_policy_mapping(self):
        policy = CompileOptions(retries=2).retry_policy()
        assert policy.max_attempts == 3

    def test_validate_catches_unknown_process(self):
        with pytest.raises(Exception):
            CompileOptions(process="exotic3").validate()

    def test_cli_args_and_http_dict_spell_identically(self):
        """The CLI namespace and an HTTP options object for the same
        request must build byte-identical job keys."""
        from repro.cli import _options_from_args, build_parser

        args = build_parser().parse_args(
            ["sweep", "--corners", "SS,TT,FF", "--vt", "auto",
             "--seed", "5", "--no-implement"]
        )
        via_cli = _options_from_args(args)
        via_http = CompileOptions.from_dict(
            {"corners": ["SS", "TT", "FF"], "vt": "auto", "seed": 5,
             "implement": False}
        )
        spec = fast_spec()
        assert (
            via_cli.compile_job(spec).key()
            == via_http.compile_job(spec).key()
        )

    def test_ppa_presets_cover_cli_choices(self):
        assert set(PPA_PRESETS) == {
            "balanced", "energy", "area", "performance",
        }
        assert CompileOptions().verify_vectors == DEFAULT_VERIFY_VECTORS


# -- ResultStore backends -----------------------------------------------------


def _record(n: int, pad: int = 0) -> dict:
    return {"status": "ok", "n": n, "pad": "x" * pad}


def _put_sized(cache: ResultCache, key: str, n: int, size: int) -> None:
    cache.put(key, _record(n, pad=size))


def _keys(n: int):
    return [f"{i:02d}" + "ab" * 31 for i in range(n)]


class TestMemoryResultStore:
    def test_roundtrip_isolated_copies(self):
        store = MemoryResultStore()
        record = {"status": "ok", "nested": {"v": 1}}
        store.put("k", record)
        record["nested"]["v"] = 999
        got = store.get("k")
        assert got["nested"]["v"] == 1
        got["nested"]["v"] = 5
        assert store.get("k")["nested"]["v"] == 1
        assert "k" in store and "missing" not in store

    def test_lru_bound_evicts_oldest(self):
        store = MemoryResultStore(max_entries=2)
        store.put("a", _record(1))
        store.put("b", _record(2))
        assert store.get("a") is not None  # refresh a
        store.put("c", _record(3))  # evicts b
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.entry_count() == 2
        assert store.stats.evictions == 1


class TestResultCacheBudget:
    def test_eviction_is_lru_and_respects_hits(self, tmp_path):
        cache = ResultCache(tmp_path, budget_mb=0.01)  # 10 kB
        keys = _keys(3)
        for i, key in enumerate(keys):
            _put_sized(cache, key, i, size=3000)
            # Distinct mtimes so LRU order is unambiguous.
            os.utime(cache._path(key), (1000.0 + i, 1000.0 + i))
        assert cache.get(keys[0]) is not None  # bump the oldest
        _put_sized(cache, _keys(4)[3], 3, size=3000)  # now over budget
        cache.enforce_budget()
        # keys[1] was the least recently used → gone; the hit survived.
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.stats.evictions >= 1
        occ = cache.occupancy()
        assert occ["bytes"] <= 10_000
        assert occ["evictions"] == cache.stats.evictions

    def test_quarantine_counted_never_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, budget_mb=0.005)  # 5 kB
        key = _keys(1)[0]
        _put_sized(cache, key, 0, size=1000)
        shard = cache._path(key).parent
        corrupt = shard / ".corrupt-deadbeef.json"
        corrupt.write_text("x" * 20_000)  # alone busts the budget
        with pytest.warns(RuntimeWarning, match="quarantined"):
            cache.enforce_budget()
        assert corrupt.exists(), "quarantine evidence must survive sweeps"
        assert cache.get(key) is None, "evictable record paid the price"
        occ = cache.occupancy()
        assert occ["quarantined"] == 1
        assert occ["quarantined_bytes"] == 20_000
        assert cache.stats.quarantine_kept == 1

    def test_env_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "7.5")
        assert ResultCache(tmp_path).budget_mb == 7.5
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "banana")
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_BUDGET_MB"):
            assert ResultCache(tmp_path).budget_mb is None
        monkeypatch.delenv("REPRO_CACHE_BUDGET_MB")
        assert ResultCache(tmp_path).budget_mb is None

    def test_unbudgeted_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i, key in enumerate(_keys(5)):
            _put_sized(cache, key, i, size=5000)
        assert cache.enforce_budget() == 0
        assert cache.entry_count() == 5

    def test_recency_touch_failure_uses_fallback_map(
        self, tmp_path, monkeypatch
    ):
        """A hit whose mtime refresh fails (read-only store) must not
        look *oldest* to the LRU sweep: the failure is counted, warned
        once per cache, and the in-process recency fallback keeps the
        hot record out of the eviction queue for the session."""
        import warnings as warnings_mod

        cache = ResultCache(tmp_path, budget_mb=0.01)  # 10 kB
        keys = _keys(3)
        for i, key in enumerate(keys):
            _put_sized(cache, key, i, size=3000)
            os.utime(cache._path(key), (1000.0 + i, 1000.0 + i))

        def _refuse(path, *args, **kwargs):
            raise PermissionError("read-only result store")

        monkeypatch.setattr(os, "utime", _refuse)
        # keys[0] is the on-disk oldest; hit it with the touch broken.
        with pytest.warns(RuntimeWarning, match="recency"):
            assert cache.get(keys[0]) is not None
        assert cache.stats.recency_touch_failures == 1
        # Warn once per cache, like the quarantine path.
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert cache.get(keys[0]) is not None
        assert cache.stats.recency_touch_failures == 2
        _put_sized(cache, _keys(4)[3], 3, size=3000)  # now over budget
        cache.enforce_budget()
        # Without the fallback keys[0] (oldest mtime) would be evicted
        # first despite being the hottest record.
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
        assert cache.occupancy()["recency_touch_failures"] >= 2

    def test_recency_fallback_cleared_when_touch_recovers(
        self, tmp_path, monkeypatch
    ):
        """Once the store is writable again, disk mtimes are
        authoritative and the stale fallback entry is dropped."""
        cache = ResultCache(tmp_path, budget_mb=0.01)
        key = _keys(1)[0]
        _put_sized(cache, key, 0, size=1000)
        real_utime = os.utime

        def _refuse(path, *args, **kwargs):
            raise PermissionError("transient")

        monkeypatch.setattr(os, "utime", _refuse)
        with pytest.warns(RuntimeWarning, match="recency"):
            cache.get(key)
        assert key in cache._recency_fallback
        monkeypatch.setattr(os, "utime", real_utime)
        cache.get(key)
        assert key not in cache._recency_fallback


# -- JobQueue scheduling ------------------------------------------------------


class TestJobQueue:
    def test_submit_compiles_and_resubmit_hits_store(self):
        with JobQueue(use_cache=False, workers=1, engine_jobs=1) as q:
            snap = q.submit(fast_spec(), options=FAST)
            assert snap["status"] == "queued"
            final = q.wait(snap["id"], timeout=120)
            assert final["status"] == "ok"
            assert final["record"]["job_key"] == snap["key"]
            again = q.submit(fast_spec(), options=FAST)
            assert again["status"] == "ok" and again["cached"]
            stats = q.stats()
            assert stats["compiled"] == 1
            assert stats["cache_hits"] == 1

    def test_coalescing_attaches_to_inflight_job(self):
        q = JobQueue(use_cache=False, workers=1, engine_jobs=1, start=False)
        try:
            first = q.submit(fast_spec(), options=FAST)
            second = q.submit(fast_spec(), options=FAST)
            assert second["id"] == first["id"]
            assert second["coalesced"] == 1
            q.start()
            final = q.wait(first["id"], timeout=120)
            assert final["status"] == "ok"
            stats = q.stats()
            assert stats["submitted"] == 2
            assert stats["coalesced"] == 1
            assert stats["compiled"] == 1
        finally:
            q.close()

    def test_durations_survive_wall_clock_steps(self, monkeypatch):
        """An NTP step moving the wall clock backwards mid-job must not
        produce negative durations: ``queued_s``/``run_s``/``uptime_s``
        are monotonic interval math, wall timestamps are display-only."""
        import repro.service.queue as qmod

        q = JobQueue(use_cache=False, start=False)
        try:
            snap = q.submit(fast_spec(), options=FAST)
            assert snap["queued_s"] >= 0 and snap["run_s"] is None
            entry = q._jobs[snap["id"]]
            entry.mark_started()
            # NTP steps the wall clock back an hour mid-job.
            real_time = time.time
            monkeypatch.setattr(
                qmod.time, "time", lambda: real_time() - 3600.0
            )
            with q._lock:
                q._finish(entry, "ok", {"status": "ok"})
            final = q.job(snap["id"])
            # The skew is visible in the display metadata...
            assert final["finished"] < final["submitted"]
            # ...but every derived interval stays sane.
            assert final["run_s"] is not None and final["run_s"] >= 0
            assert final["queued_s"] >= 0
            assert q.stats()["uptime_s"] >= 0
        finally:
            q.close()

    def test_cached_hit_snapshot_reports_zero_durations(self):
        store = MemoryResultStore()
        key = FAST.compile_job(fast_spec()).key()
        store.put(key, {"status": "ok"})
        q = JobQueue(store=store, start=False)
        try:
            snap = q.submit(fast_spec(), options=FAST)
            assert snap["cached"] and snap["status"] == "ok"
            assert snap["queued_s"] == 0.0 and snap["run_s"] == 0.0
        finally:
            q.close()

    def test_priority_orders_the_heap(self):
        q = JobQueue(use_cache=False, start=False)
        try:
            low = q.submit(fast_spec(height=16), options=FAST, priority=5)
            high = q.submit(fast_spec(width=16), options=FAST, priority=-5)
            mid = q.submit(fast_spec(mcr=2), options=FAST, priority=0)
            with q._lock:
                order = [q._pop_locked().id for _ in range(3)]
            assert order == [high["id"], mid["id"], low["id"]]
        finally:
            q.close()

    def test_cancel_queued_only(self):
        q = JobQueue(use_cache=False, start=False)
        try:
            snap = q.submit(fast_spec(), options=FAST)
            outcome = q.cancel(snap["id"])
            assert outcome["cancelled"] and outcome["status"] == "cancelled"
            again = q.cancel(snap["id"])  # already terminal
            assert not again["cancelled"]
            with pytest.raises(ServiceError, match="unknown job id"):
                q.cancel("job-nope")
            assert q.stats()["cancelled"] == 1
        finally:
            q.close()

    def test_close_cancels_queued_and_refuses_new_work(self):
        q = JobQueue(use_cache=False, start=False)
        snap = q.submit(fast_spec(), options=FAST)
        q.close()
        assert q.job(snap["id"])["status"] == "cancelled"
        with pytest.raises(ServiceError, match="shutting down"):
            q.submit(fast_spec(), options=FAST)


# -- live HTTP API ------------------------------------------------------------


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One live server on an ephemeral port for the whole module."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    queue = JobQueue(cache_dir=cache_dir, workers=2, engine_jobs=1)
    server = create_server(queue)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.base_url)
    yield {"client": client, "queue": queue, "cache_dir": cache_dir,
           "base_url": server.base_url}
    server.shutdown()
    server.server_close()
    queue.close()


SPEC_PAYLOAD = {
    "height": 8, "width": 8, "mcr": 1,
    "mac_frequency_mhz": 400.0, "formats": ["INT4"],
}


class TestServiceHTTP:
    def test_health_and_stats(self, service):
        health = service["client"].health()
        assert health["ok"] and health["run_id"]
        stats = service["client"].stats()
        assert stats["workers"] == 2
        assert "store" in stats

    def test_submit_poll_fetch(self, service):
        client = service["client"]
        snap = client.submit(SPEC_PAYLOAD, options=FAST)
        final = client.wait(snap["id"], timeout=300)
        assert final["status"] == "ok"
        assert final["record"]["status"] == "ok"
        fetched = client.result(snap["key"])
        assert fetched is not None and fetched["status"] == "ok"
        assert client.result("deadbeef" * 8) is None

    def test_spec_accepts_macrospec_objects(self, service):
        snap = service["client"].submit(fast_spec(), options=FAST)
        assert snap["key"] == FAST.compile_job(fast_spec()).key()

    def test_unknown_ids_are_404(self, service):
        with pytest.raises(ServiceError, match="404"):
            service["client"].job("job-nope")
        with pytest.raises(ServiceError, match="404"):
            service["client"].sweep("sweep-nope")

    def test_malformed_requests_are_400(self, service):
        import urllib.error
        import urllib.request

        url = service["base_url"] + "/v1/jobs"
        for body in (b"{notjson", b'{"no_spec": 1}',
                     b'{"spec": {"height": "tall"}}'):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    urllib.request.Request(url, data=body, method="POST")
                )
            assert err.value.code == 400
            assert "error" in json.loads(err.value.read())

    def test_unknown_option_is_400_with_message(self, service):
        with pytest.raises(ServiceError, match="vektors"):
            service["client"].submit(
                SPEC_PAYLOAD, options={"vektors": 12}
            )

    def test_cancel_terminal_job_reports_lost_race(self, service):
        client = service["client"]
        snap = client.submit(SPEC_PAYLOAD, options=FAST)
        client.wait(snap["id"], timeout=300)
        outcome = client.cancel(snap["id"])
        assert outcome["cancelled"] is False

    def test_sweep_fans_out_and_completes(self, service):
        client = service["client"]
        sweep = client.submit_sweep(
            {"height": ["8"], "width": ["8", "16"], "mcr": ["1"],
             "frequency": ["400"], "formats": ["INT4"]},
            options=FAST,
        )
        assert sweep["points"] == 2
        done = client.wait_sweep(sweep["id"], timeout=600)
        assert done["done"] and done["counts"] == {"ok": 2}

    def test_sweep_rejects_unknown_axis_and_ppa(self, service):
        with pytest.raises(ServiceError, match="altitude"):
            service["client"].submit_sweep({"altitude": ["3"]})
        with pytest.raises(ServiceError, match="ppa"):
            service["client"].submit_sweep(
                {"height": ["8"]}, ppa="cheapest"
            )


# -- PR acceptance criteria ---------------------------------------------------


SWEEP_16 = {
    "height": ["8", "16"],
    "width": ["8", "16"],
    "mcr": ["1"],
    "formats": ["INT4"],
    "frequency": ["400", "500"],
    "vdd": ["0.8", "0.9"],
}


class TestAcceptance:
    def test_concurrent_clients_compile_each_hash_once(self, tmp_path):
        """Two clients race the same 16-point sweep; the service must
        compile each content hash exactly once."""
        queue = JobQueue(cache_dir=tmp_path, workers=4, engine_jobs=1)
        server = create_server(queue)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            results = [None, None]

            def one_client(slot: int) -> None:
                client = ServiceClient(server.base_url)
                sweep = client.submit_sweep(SWEEP_16, options=FAST)
                results[slot] = client.wait_sweep(sweep["id"], timeout=600)

            threads = [
                threading.Thread(target=one_client, args=(i,))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            for done in results:
                assert done is not None and done["done"]
                assert done["counts"] == {"ok": 16}, done["counts"]
            # Both clients saw the same 16 content hashes…
            assert set(results[0]["keys"]) == set(results[1]["keys"])
            assert len(set(results[0]["keys"])) == 16
            # …and the service compiled each exactly once.
            stats = queue.stats()
            assert stats["compiled"] == 16, stats
            assert stats["store"]["entries"] == 16
        finally:
            server.shutdown()
            server.server_close()
            queue.close()

    def test_cached_result_is_byte_identical_to_engine_record(
        self, tmp_path
    ):
        """GET /v1/results/<hash> must return exactly what a direct
        BatchCompiler stores for the same job — same store, same
        bytes."""
        spec = fast_spec(height=16, width=8)
        with JobQueue(cache_dir=tmp_path, workers=1, engine_jobs=1) as q:
            server = create_server(q)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                client = ServiceClient(server.base_url)
                snap = client.submit(spec, options=FAST)
                client.wait(snap["id"], timeout=300)
                via_http = client.result(snap["key"])
            finally:
                server.shutdown()
                server.server_close()

        engine = BatchCompiler(
            jobs=1, cache_dir=tmp_path, options=FAST, journal=False
        )
        result = engine.run_jobs([FAST.compile_job(spec)])
        direct = result.records[0]
        assert direct["cached"], "direct run must hit the service's entry"
        stripped = {
            k: v for k, v in direct.items() if k not in ("cached", "job_key")
        }
        assert (
            json.dumps(stripped, sort_keys=True)
            == json.dumps(via_http, sort_keys=True)
        )


# -- chaos: a crashed worker is a status, not an outage -----------------------


class TestChaos:
    def test_crashed_worker_lands_terminal_error_and_service_survives(
        self, tmp_path, monkeypatch
    ):
        """With 100% crash injection a job's worker process dies
        (os._exit in the pool); the client must see a terminal
        ``error`` record — never a hung poll — and the service must
        keep serving clean jobs afterwards."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:1.0")
        monkeypatch.setenv("REPRO_FAULT_SEED", "0")
        # job_timeout_s arms the pooled (process-isolated) path even
        # for a single job; retries=0 keeps the test to one attempt.
        chaotic = FAST.replace(job_timeout_s=120.0, retries=0)
        queue = JobQueue(cache_dir=tmp_path, workers=1, engine_jobs=2)
        server = create_server(queue)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.base_url)
            snap = client.submit(SPEC_PAYLOAD, options=chaotic)
            final = client.wait(snap["id"], timeout=300)
            assert final["status"] == "error", final
            assert final["record"]["status"] == "error"
            # Failures are never cached: the hash stays absent.
            assert client.result(snap["key"]) is None
            # The server is still alive and compiles clean work.
            monkeypatch.delenv("REPRO_FAULTS")
            assert client.health()["ok"]
            clean = client.submit(SPEC_PAYLOAD, options=FAST)
            assert client.wait(clean["id"], timeout=300)["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            queue.close()


# -- journals: service pruning and the CLI ------------------------------------


def _make_journal(root, stem: str, age_s: float) -> None:
    directory = root / "journal"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{stem}.jsonl"
    path.write_text('{"event": "begin"}\n')
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))


class TestJournals:
    def test_list_newest_first(self, tmp_path):
        for i in range(3):
            _make_journal(tmp_path, f"run-{i}", age_s=100 * (3 - i))
        assert [p.stem for p in list_journals(tmp_path)] == [
            "run-2", "run-1", "run-0",
        ]

    def test_prune_requires_explicit_policy(self, tmp_path):
        _make_journal(tmp_path, "run-a", age_s=10)
        assert prune_journals(tmp_path) == []
        assert len(list_journals(tmp_path)) == 1

    def test_prune_keep_and_age_and_exclude(self, tmp_path):
        for i in range(4):
            _make_journal(tmp_path, f"run-{i}", age_s=1000 * (4 - i))
        removed = prune_journals(tmp_path, keep=2, exclude=("run-0",))
        # Newest two (run-3, run-2) kept by index, run-0 by exclusion.
        assert [p.stem for p in removed] == ["run-1"]
        removed = prune_journals(tmp_path, older_than_s=2500.0)
        assert {p.stem for p in removed} == {"run-0"}
        survivors = {p.stem for p in list_journals(tmp_path)}
        assert survivors == {"run-3", "run-2"}

    def test_service_prunes_after_sweep_but_keeps_own_journal(
        self, tmp_path
    ):
        for i in range(5):
            _make_journal(tmp_path, f"old-{i}", age_s=5000 + i)
        with JobQueue(
            cache_dir=tmp_path, workers=1, engine_jobs=1, journal_keep=2
        ) as q:
            sweep = q.submit_sweep(
                {"height": ["8"], "width": ["8"], "mcr": ["1"],
                 "formats": ["INT4"], "frequency": ["400"]},
                options=FAST,
            )
            deadline = time.monotonic() + 120
            while not q.sweep(sweep["id"])["done"]:
                assert time.monotonic() < deadline
                time.sleep(0.1)
            survivors = {p.stem for p in list_journals(tmp_path)}
            assert q.run_id in survivors, "live journal must survive"
            assert len(survivors - {q.run_id}) <= 2

    def test_journal_cli_list_and_prune(self, tmp_path, capsys):
        from repro.cli import main

        for i in range(3):
            _make_journal(tmp_path, f"run-{i}", age_s=100 * (3 - i))
        assert main(["journal", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 journal(s)" in out and "run-2" in out
        assert main(
            ["journal", "--cache-dir", str(tmp_path), "--prune"]
        ) == 1, "prune without a policy must refuse"
        assert main(
            ["journal", "--cache-dir", str(tmp_path), "--prune",
             "--keep", "1"]
        ) == 0
        assert [p.stem for p in list_journals(tmp_path)] == ["run-2"]


# -- blessed surface ----------------------------------------------------------


class TestStableSurface:
    def test_blessed_names_import_from_the_package_root(self):
        import repro

        for name in (
            "MacroSpec", "SynDCIM", "BatchCompiler", "CompileOptions",
            "ImplementSession", "verify_macro", "multi_corner_signoff",
            "ServiceClient", "ServiceError",
        ):
            assert getattr(repro, name) is not None
        with pytest.raises(AttributeError):
            repro.NotAThing

    def test_service_exports_are_lazy(self):
        import repro.service as service

        assert service.__all__ == [
            "JobQueue", "ServiceClient", "ServiceServer", "create_server",
        ]
        assert service.JobQueue is JobQueue

    def test_cache_schema_unchanged_by_this_layer(self):
        # The service shares cache entries with local runs only while
        # both speak the same schema version.
        assert CACHE_SCHEMA_VERSION == 5
