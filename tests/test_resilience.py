"""Fault-tolerant batch execution: fault harness, retry policy,
watchdog, journal/resume, quarantine — and the chaos acceptance sweep.

Every pool-level scenario here is scripted through the deterministic
``$REPRO_FAULTS`` harness (:mod:`repro.batch.faults`): a fault draw is
a pure function of (seed, kind, job key, attempt), so the parent, the
workers and this test file all agree on exactly which jobs die, hang
or retry.  ``kind:1.0:first`` is the idiom for "fail attempt 1, then
succeed" — the scripted version of a transient failure.
"""

from __future__ import annotations

import json

import pytest

from repro.batch.cache import ResultCache, cache_corruption_count
from repro.batch.engine import BatchCompiler, _worker_initializer
from repro.batch.faults import (
    CRASH_EXIT_CODE,
    FaultInjected,
    FaultPlan,
    active_plan,
)
from repro.batch.jobs import CompileJob
from repro.batch.resilience import (
    TERMINAL_STATUSES,
    RetryPolicy,
    SweepJournal,
    journal_dir,
    new_run_id,
)
from repro.cli import main as cli_main
from repro.errors import BatchError, SpecificationError
from repro.spec import INT4, MacroSpec

KEY = "ab" * 32  # a well-formed job key for direct cache/plan calls


def _small_spec(**overrides) -> MacroSpec:
    base = dict(
        height=8,
        width=8,
        mcr=2,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=400.0,
    )
    base.update(overrides)
    return MacroSpec(**base)


def _specs(n: int):
    """n distinct, fast-to-compile specs (search only, no implement)."""
    return [
        _small_spec(mac_frequency_mhz=200.0 + 25.0 * i) for i in range(n)
    ]


def _arm(monkeypatch, faults: str, seed: int = 0, hang_s: float = 30.0):
    monkeypatch.setenv("REPRO_FAULTS", faults)
    monkeypatch.setenv("REPRO_FAULT_SEED", str(seed))
    monkeypatch.setenv("REPRO_FAULT_HANG_S", str(hang_s))


def _strip_bookkeeping(record: dict) -> dict:
    """Everything that may legitimately differ between a chaos run and
    a fault-free run of the same job."""
    return {
        k: v
        for k, v in record.items()
        if k
        not in (
            "cached",
            "resumed",
            "job_key",
            "elapsed_s",
            "attempts",
            "retry_history",
        )
    }


# -- fault plan grammar and determinism --------------------------------------


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            "crash:0.2, hang:0.1:first ,corrupt_cache:1", seed=7
        )
        assert plan.rules["crash"].probability == 0.2
        assert plan.rules["hang"].first_attempt_only
        assert not plan.rules["crash"].first_attempt_only
        assert plan.rules["corrupt_cache"].probability == 1.0
        assert plan.seed == 7
        assert "crash:0.2" in plan.describe()

    @pytest.mark.parametrize(
        "text",
        [
            "explode:0.5",  # unknown kind
            "crash",  # missing probability
            "crash:maybe",  # unparsable probability
            "crash:1.5",  # out of range
            "crash:-0.1",  # out of range
            "crash:0.5:always",  # unknown limiter
            "crash:0.5:first:x",  # too many fields
        ],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(SpecificationError):
            FaultPlan.parse(text)

    def test_draws_deterministic_across_instances(self):
        a = FaultPlan.parse("crash:0.5", seed=3)
        b = FaultPlan.parse("crash:0.5", seed=3)
        keys = [f"{i:02d}" * 32 for i in range(64)]
        assert [a.should("crash", k) for k in keys] == [
            b.should("crash", k) for k in keys
        ]
        # ... and actually mixed — a 0.5 rule over 64 keys that fired
        # never or always would mean the draw is broken.
        fired = sum(a.should("crash", k) for k in keys)
        assert 0 < fired < 64

    def test_seed_changes_draws(self):
        keys = [f"{i:02d}" * 32 for i in range(64)]
        a = [FaultPlan.parse("crash:0.5", seed=1).should("crash", k) for k in keys]
        b = [FaultPlan.parse("crash:0.5", seed=2).should("crash", k) for k in keys]
        assert a != b

    def test_probability_bounds(self):
        always = FaultPlan.parse("crash:1.0")
        never = FaultPlan.parse("crash:0.0")
        for i in range(8):
            key = f"{i:02d}" * 32
            assert always.should("crash", key)
            assert not never.should("crash", key)

    def test_first_limiter_pins_to_attempt_one(self):
        plan = FaultPlan.parse("crash:1.0:first")
        assert plan.should("crash", KEY, attempt=1)
        assert not plan.should("crash", KEY, attempt=2)

    def test_attempt_part_of_draw(self):
        """A probabilistic fault need not recur on retry — the attempt
        number feeds the hash, so retries get fresh draws."""
        plan = FaultPlan.parse("crash:0.5", seed=0)
        keys = [f"{i:02d}" * 32 for i in range(64)]
        a1 = [plan.should("crash", k, 1) for k in keys]
        a2 = [plan.should("crash", k, 2) for k in keys]
        assert a1 != a2

    def test_planned_mirrors_worker_order(self):
        plan = FaultPlan.parse("crash:1.0,hang:1.0,raise:1.0")
        assert plan.planned(KEY, 1) == "crash"  # crash wins the race
        assert FaultPlan.parse("raise:1.0").planned(KEY, 1) == "raise"
        assert FaultPlan.parse("corrupt_cache:1.0").planned(KEY, 1) is None
        assert FaultPlan.parse("crash:0.0").planned(KEY, 1) is None

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 70

    def test_active_plan_tracks_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_plan() is None
        _arm(monkeypatch, "crash:0.25", seed=9)
        plan = active_plan()
        assert plan is not None
        assert plan.rules["crash"].probability == 0.25
        assert plan.seed == 9
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_plan() is None

    def test_active_plan_malformed_warns_and_disarms(self, monkeypatch):
        """A worker must never die to a typo'd environment."""
        monkeypatch.setenv("REPRO_FAULTS", "explode:banana")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert active_plan() is None


# -- retry policy ------------------------------------------------------------


class TestRetryPolicy:
    def test_default_matches_historical_one_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 2
        assert policy.delay(1) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(backoff_s=-1.0),
            dict(jitter=-0.5),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0

    def test_jitter_bounded(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=1.0, jitter=0.2)
        for _ in range(32):
            assert 1.0 <= policy.delay(1) <= 1.2


# -- write-ahead journal ------------------------------------------------------


class TestSweepJournal:
    def test_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin(total=3, unique=2)
        journal.submit(["k1", "k2"])
        journal.done("k1", {"status": "ok", "power_mw": 1.0})
        journal.done("k2", {"status": "error", "error": "boom"})
        journal.close()
        loaded = SweepJournal.load(tmp_path, journal.run_id)
        assert loaded == {
            "k1": {"status": "ok", "power_mw": 1.0},
            "k2": {"status": "error", "error": "boom"},
        }

    def test_unknown_run_id_raises(self, tmp_path):
        with pytest.raises(BatchError, match="unknown run id"):
            SweepJournal.load(tmp_path, "20990101-000000-abcdef")

    def test_torn_tail_tolerated(self, tmp_path):
        """A kill -9 mid-write leaves a torn final line; load keeps
        everything before it."""
        journal = SweepJournal(tmp_path)
        journal.done("k1", {"status": "ok"})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "done", "key": "k2", "rec')  # torn
        loaded = SweepJournal.load(tmp_path, journal.run_id)
        assert loaded == {"k1": {"status": "ok"}}

    def test_unwritable_root_degrades_silently(self, tmp_path):
        """A full disk must never abort the sweep the journal was
        protecting."""
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the journal dir should go")
        journal = SweepJournal(blocker)  # mkdir under a file fails
        journal.begin(total=1, unique=1)
        journal.done("k1", {"status": "ok"})
        journal.close()
        assert not journal_dir(blocker).exists()

    def test_run_ids_unique(self):
        assert new_run_id() != new_run_id()


# -- cache corruption quarantine ---------------------------------------------


class TestCacheQuarantine:
    def test_corrupt_record_quarantined_and_counted(self, tmp_path):
        key = "fa" * 32  # unique per test: the warning latch is
        # process-wide, once per key
        cache = ResultCache(tmp_path)
        cache.put(key, {"status": "ok"})
        path = cache._path(key)
        path.write_text("{torn record")
        before = cache_corruption_count()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert cache_corruption_count() == before + 1
        assert not path.exists()
        quarantined = path.with_name(f".corrupt-{key}.json")
        assert quarantined.is_file()
        assert quarantined.read_text() == "{torn record"
        # The dot prefix hides quarantined files from entry_count, and
        # the slot is writable again (miss -> recompile -> overwrite).
        assert cache.entry_count() == 0
        cache.put(key, {"status": "ok", "v": 2})
        assert cache.get(key) == {"status": "ok", "v": 2}

    def test_os_level_miss_is_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None  # plain miss
        assert cache.stats.corruptions == 0

    def test_corrupt_cache_fault_truncates_on_put(
        self, tmp_path, monkeypatch
    ):
        """The chaos hook corrupts the stored bytes so the *next*
        lookup exercises the quarantine path end to end."""
        key = "fb" * 32  # fresh key: the quarantine warning latch is
        # process-wide, once per key
        _arm(monkeypatch, "corrupt_cache:1.0")
        cache = ResultCache(tmp_path)
        cache.put(key, {"status": "ok", "power_mw": 1.25})
        monkeypatch.delenv("REPRO_FAULTS")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key) is None
        assert cache._path(key).with_name(
            f".corrupt-{key}.json"
        ).is_file()

    def test_corrupt_cache_fault_respects_probability_zero(
        self, tmp_path, monkeypatch
    ):
        _arm(monkeypatch, "corrupt_cache:0.0")
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"status": "ok"})
        assert cache.get(KEY) == {"status": "ok"}


# -- engine: watchdog timeouts ------------------------------------------------


class TestWatchdog:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(BatchError, match="positive"):
            BatchCompiler(jobs=1, use_cache=False, job_timeout_s=0)

    def test_hang_timed_out_then_retried_to_ok(self, tmp_path, monkeypatch):
        """Every job hangs on attempt 1 (past the watchdog deadline),
        is killed with its pool, and succeeds on the uncontaminated
        retry — ok records carrying the timeout in their history."""
        _arm(monkeypatch, "hang:1.0:first", hang_s=30.0)
        engine = BatchCompiler(
            jobs=2, cache_dir=tmp_path, job_timeout_s=1.5
        )
        batch = engine.compile_specs(_specs(2), implement=False)
        assert [r["status"] for r in batch.records] == ["ok", "ok"]
        for record in batch.records:
            assert record["attempts"] == 2
            (entry,) = record["retry_history"]
            assert entry["outcome"] == "timeout"
            assert entry["fault"] == "hang"
            assert "watchdog" in entry["reason"]
        assert batch.stats.retried == 2
        assert batch.stats.timeouts == 0  # retries recovered them all

    def test_persistent_hang_becomes_timeout_record(
        self, tmp_path, monkeypatch
    ):
        """A job that hangs on every attempt exhausts its budget and
        terminates as a ``timeout`` record — never a lost job, never a
        wedged sweep."""
        _arm(monkeypatch, "hang:1.0", hang_s=30.0)
        engine = BatchCompiler(
            jobs=2,
            cache_dir=tmp_path,
            job_timeout_s=0.75,
            retry=RetryPolicy(max_attempts=2),
        )
        batch = engine.compile_specs(_specs(1), implement=False)
        (record,) = batch.records
        assert record["status"] == "timeout"
        assert record["attempts"] == 2
        assert len(record["retry_history"]) == 2
        assert record["fault"] == "hang"
        assert batch.stats.timeouts == 1
        assert "timeouts 1" in batch.stats.cache_line()
        assert "1 timed out" in batch.describe()
        # Timeouts are transient verdicts about this run's environment,
        # never cached as the job's result.
        assert (
            BatchCompiler(jobs=1, cache_dir=tmp_path).cache.get(
                CompileJob(
                    spec=_specs(1)[0], implement=False
                ).key()
            )
            is None
        )


# -- engine: pool-break recovery (satellite: BrokenProcessPool paths) --------


class TestPoolBreakRecovery:
    def test_mid_sweep_break_retried_to_ok(self, tmp_path, monkeypatch):
        """(a) Workers crash (os._exit — BrokenProcessPool) on attempt
        1; the pool is rebuilt and the retry succeeds."""
        _arm(monkeypatch, "crash:1.0:first")
        engine = BatchCompiler(jobs=2, cache_dir=tmp_path)
        batch = engine.compile_specs(_specs(2), implement=False)
        assert [r["status"] for r in batch.records] == ["ok", "ok"]
        for record in batch.records:
            assert record["attempts"] == 2
            (entry,) = record["retry_history"]
            assert entry["outcome"] == "error"
            assert entry["fault"] == "crash"
        assert batch.stats.retried == 2
        assert "retried 2" in batch.stats.cache_line()

    def test_repeated_break_exhausts_budget(self, tmp_path, monkeypatch):
        """(b) A job that kills its worker on every attempt becomes a
        ``worker died`` error record after the budget runs out."""
        _arm(monkeypatch, "crash:1.0")
        engine = BatchCompiler(
            jobs=2,
            cache_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2),
        )
        batch = engine.compile_specs(_specs(2), implement=False)
        for record in batch.records:
            assert record["status"] == "error"
            assert "worker died" in record["error"]
            assert record["attempts"] == 2
            assert record["fault"] == "crash"
            assert len(record["retry_history"]) == 2
        assert batch.stats.failed == 2
        # Worker-death verdicts are environmental, never cached.
        assert BatchCompiler(jobs=1, cache_dir=tmp_path).cache.get(
            CompileJob(spec=_specs(2)[0], implement=False).key()
        ) is None

    def test_crash_culprit_does_not_burn_poolmates_budget(
        self, tmp_path, monkeypatch
    ):
        """One repeat-crasher among many healthy jobs: pool-mates in
        flight when the pool breaks re-run *uncharged* (the plan
        identifies the culprit), so only the crasher exhausts its
        budget."""
        specs = _specs(6)
        jobs = [CompileJob(spec=s, implement=False) for s in specs]
        # Pick a seed under which exactly one key crashes at p=0.15.
        seed = next(
            seed
            for seed in range(64)
            if sum(
                any(
                    FaultPlan.parse("crash:0.15", seed=seed).should(
                        "crash", j.key(), attempt
                    )
                    for attempt in (1, 2)
                )
                for j in jobs
            )
            == 1
        )
        _arm(monkeypatch, "crash:0.15", seed=seed)
        engine = BatchCompiler(
            jobs=2,
            cache_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2),
        )
        batch = engine.compile_specs(specs, implement=False)
        statuses = sorted(r["status"] for r in batch.records)
        assert statuses.count("ok") >= 5
        for record in batch.records:
            if record["status"] == "ok":
                assert record.get("attempts") in (None, 2)

    def test_single_future_raise_with_pool_alive(
        self, tmp_path, monkeypatch
    ):
        """(c) A future that raises while the pool survives — the
        injected :class:`FaultInjected` escapes the worker's record
        machinery — is charged and retried without a pool rebuild."""
        _arm(monkeypatch, "raise:1.0:first")
        engine = BatchCompiler(jobs=2, cache_dir=tmp_path)
        batch = engine.compile_specs(_specs(2), implement=False)
        assert [r["status"] for r in batch.records] == ["ok", "ok"]
        for record in batch.records:
            assert record["attempts"] == 2
            (entry,) = record["retry_history"]
            assert entry["fault"] == "raise"
            assert "FaultInjected" in entry["reason"]

    def test_persistent_raise_exhausts_budget(self, tmp_path, monkeypatch):
        _arm(monkeypatch, "raise:1.0")
        engine = BatchCompiler(
            jobs=2,
            cache_dir=tmp_path,
            retry=RetryPolicy(max_attempts=2),
        )
        batch = engine.compile_specs(_specs(2), implement=False)
        for record in batch.records:
            assert record["status"] == "error"
            assert record["attempts"] == 2
            assert "injected worker fault" in record["error"]

    def test_fault_injected_is_a_runtime_error(self):
        assert issubclass(FaultInjected, RuntimeError)


# -- engine: crash-safe resume ------------------------------------------------


class _AbortAfter(Exception):
    """Stand-in for a kill: raised from the progress callback after N
    records, unwinding run_jobs mid-sweep with the journal flushed."""


class TestResume:
    def _abort_progress(self, after: int):
        seen = {"n": 0}

        def progress(done, total, record):
            seen["n"] += 1
            if seen["n"] >= after:
                raise _AbortAfter()

        return progress

    def test_resume_recompiles_only_the_remainder(self, tmp_path):
        """Kill a sweep after 3 of 8 records; ``resume=<run id>``
        serves those 3 from the journal (not the cache — it is
        disabled) and compiles exactly the other 5."""
        specs = _specs(8)
        engine = BatchCompiler(
            jobs=1,
            use_cache=False,
            cache_dir=tmp_path,  # journal root only
            progress=self._abort_progress(3),
        )
        run_id = engine.run_id
        assert run_id is not None
        with pytest.raises(_AbortAfter):
            engine.compile_specs(specs, implement=False)

        journal_text = (
            journal_dir(tmp_path) / f"{run_id}.jsonl"
        ).read_text()
        events = [json.loads(line) for line in journal_text.splitlines()]
        assert sum(e["event"] == "submit" for e in events) == 8
        assert sum(e["event"] == "done" for e in events) == 3

        resumed = BatchCompiler(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=run_id
        )
        assert resumed.run_id == run_id
        batch = resumed.compile_specs(specs, implement=False)
        assert batch.stats.resumed == 3
        assert batch.stats.compiled == 5
        assert batch.stats.cache_hits == 0
        assert "resumed 3" in batch.stats.cache_line()
        assert len(batch.records) == 8
        assert all(r["status"] == "ok" for r in batch.records)
        assert sum(bool(r.get("resumed")) for r in batch.records) == 3

    def test_resumed_records_match_fresh_compiles(self, tmp_path):
        """What the journal replays is the record the sweep produced."""
        specs = _specs(4)
        engine = BatchCompiler(
            jobs=1,
            use_cache=False,
            cache_dir=tmp_path,
            progress=self._abort_progress(2),
        )
        run_id = engine.run_id
        with pytest.raises(_AbortAfter):
            engine.compile_specs(specs, implement=False)
        batch = BatchCompiler(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=run_id
        ).compile_specs(specs, implement=False)
        fresh = BatchCompiler(jobs=1, use_cache=False).compile_specs(
            specs, implement=False
        )
        for resumed_rec, fresh_rec in zip(batch.records, fresh.records):
            assert _strip_bookkeeping(resumed_rec) == _strip_bookkeeping(
                fresh_rec
            )

    def test_unknown_resume_id_fails_loudly(self, tmp_path):
        engine = BatchCompiler(
            jobs=1, cache_dir=tmp_path, resume="20990101-000000-abcdef"
        )
        with pytest.raises(BatchError, match="unknown run id"):
            engine.compile_specs(_specs(1), implement=False)

    def test_resume_without_journal_root_rejected(self):
        with pytest.raises(BatchError, match="journal root"):
            BatchCompiler(jobs=1, use_cache=False, resume="x")

    def test_no_journal_without_cache_root(self):
        """``use_cache=False`` with no cache_dir (the benchmark path)
        must not surprise-write a journal under the home directory."""
        engine = BatchCompiler(jobs=1, use_cache=False)
        assert engine.run_id is None


# -- worker warnings (satellite: no more silent bare excepts) ----------------


class TestWorkerWarnings:
    def test_initializer_warns_when_preload_fails(self, monkeypatch):
        import repro.scl.library as library
        import repro.shm.scl as shm_scl

        def broken_scl(*args, **kwargs):
            raise OSError("cache dir vanished")

        monkeypatch.setattr(library, "default_scl", broken_scl)
        # A published shm segment (e.g. from an earlier test in this
        # process) would satisfy the worker without touching the broken
        # resolver — force the attach to miss.
        monkeypatch.setattr(
            shm_scl, "attach_default_scl", lambda *a, **k: None
        )
        with pytest.warns(RuntimeWarning, match="could not preload"):
            _worker_initializer()

    def test_corner_prewarm_warns_once(self, monkeypatch):
        import repro.batch.engine as engine_mod
        import repro.signoff.corners as corners

        def broken(*args, **kwargs):
            raise OSError("corner cache unwritable")

        monkeypatch.setattr(corners, "worst_corner_scl", broken)
        monkeypatch.setattr(engine_mod, "_PREWARM_WARNED", False)
        engine = BatchCompiler(
            jobs=2, use_cache=False, corners=("worst",)
        )
        jobs = [CompileJob(spec=_specs(1)[0], implement=False)]
        with pytest.warns(RuntimeWarning, match="prewarm failed"):
            engine._prewarm_corners(jobs)
        # The latch makes it once per process, not once per sweep.
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            engine._prewarm_corners(jobs)


# -- CLI ---------------------------------------------------------------------


class TestResilienceCLI:
    def _argv(self, tmp_path, *extra):
        return [
            "sweep",
            "--height", "8",
            "--width", "8",
            "--formats", "INT4",
            "--frequency", "200:350:+50",
            "--no-implement",
            "--no-summary",
            "-j", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "out.jsonl"),
            *extra,
        ]

    def test_sweep_prints_resume_handle_up_front(self, tmp_path, capsys):
        assert cli_main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "--resume" in out
        assert "run " in out

    def test_resume_happy_path(self, tmp_path, capsys):
        assert cli_main(self._argv(tmp_path)) == 0
        out = capsys.readouterr().out
        run_id = next(
            line.split()[1]
            for line in out.splitlines()
            if line.startswith("run ")
        )
        assert (
            cli_main(self._argv(tmp_path, "--resume", run_id)) == 0
        )
        out = capsys.readouterr().out
        assert f"resuming run {run_id}" in out
        assert "resumed 4" in out
        assert "compiled 0" in out

    def test_resume_unknown_id_errors(self, tmp_path, capsys):
        (tmp_path / "cache").mkdir()
        rc = cli_main(
            self._argv(tmp_path, "--resume", "20990101-000000-abcdef")
        )
        assert rc == 1
        assert "unknown run id" in capsys.readouterr().err

    def test_malformed_fault_env_fails_loudly(
        self, tmp_path, capsys, monkeypatch
    ):
        """A typo'd chaos spec must not run a clean sweep that
        "passes" — the CLI validates at arm time."""
        monkeypatch.setenv("REPRO_FAULTS", "explode:0.5")
        rc = cli_main(self._argv(tmp_path))
        assert rc == 1
        assert "REPRO_FAULTS" in capsys.readouterr().err

    def test_armed_faults_announced(self, tmp_path, capsys, monkeypatch):
        _arm(monkeypatch, "raise:0.0", seed=5)
        assert cli_main(self._argv(tmp_path)) == 0
        assert "faults armed (raise:0" in capsys.readouterr().out

    def test_job_timeout_flag_drives_watchdog(
        self, tmp_path, capsys, monkeypatch
    ):
        _arm(monkeypatch, "hang:1.0", hang_s=30.0)
        rc = cli_main(
            self._argv(
                tmp_path,
                "--job-timeout", "0.75",
                "--retries", "0",
                "-j", "2",
                "--frequency", "200",
            )
        )
        out = capsys.readouterr().out
        assert rc == 1  # a timed-out sweep is not a clean exit
        assert "1 timed out" in out
        record = json.loads(
            (tmp_path / "out.jsonl").read_text().splitlines()[0]
        )
        assert record["status"] == "timeout"


# -- chaos acceptance ---------------------------------------------------------


class TestChaosAcceptance:
    def test_seeded_chaos_sweep_terminates_and_matches_clean_run(
        self, tmp_path, monkeypatch
    ):
        """The acceptance gate: a 32-point sweep under seeded crash +
        hang + cache-corruption faults completes with every record
        terminal (no lost jobs, no wedge), and its ``ok`` records are
        bit-identical (modulo retry bookkeeping) to a fault-free run
        of the same grid."""
        specs = [
            _small_spec(
                height=h, width=w, mac_frequency_mhz=200.0 + 50.0 * i
            )
            for h in (8, 16)
            for w in (8, 16)
            for i in range(8)
        ]
        assert len(specs) == 32

        _arm(
            monkeypatch,
            "crash:0.2,hang:0.1,corrupt_cache:0.1",
            seed=11,
            hang_s=30.0,
        )
        chaos = BatchCompiler(
            jobs=4,
            cache_dir=tmp_path / "chaos-cache",
            job_timeout_s=2.0,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        ).compile_specs(specs, implement=False)

        assert len(chaos.records) == 32  # no lost jobs
        for record in chaos.records:
            assert record["status"] in TERMINAL_STATUSES
        # The seed is chosen so the sweep actually hurts: at least one
        # retry happened, or the harness proved nothing.
        assert chaos.stats.retried > 0

        monkeypatch.delenv("REPRO_FAULTS")
        clean = BatchCompiler(
            jobs=2, cache_dir=tmp_path / "clean-cache"
        ).compile_specs(specs, implement=False)
        assert all(r["status"] == "ok" for r in clean.records)

        compared = 0
        for chaos_rec, clean_rec in zip(chaos.records, clean.records):
            if chaos_rec["status"] != "ok":
                continue
            compared += 1
            assert _strip_bookkeeping(chaos_rec) == _strip_bookkeeping(
                clean_rec
            )
        assert compared > 0

    def test_chaos_survivors_cached_pure(self, tmp_path, monkeypatch):
        """Records cached during a chaos run carry no retry bookkeeping
        — a later cache hit is indistinguishable from a fault-free
        compile's."""
        _arm(monkeypatch, "crash:1.0:first")
        chaos = BatchCompiler(
            jobs=2, cache_dir=tmp_path
        ).compile_specs(_specs(2), implement=False)
        assert all(r["attempts"] == 2 for r in chaos.records)

        monkeypatch.delenv("REPRO_FAULTS")
        cached = BatchCompiler(jobs=1, cache_dir=tmp_path).compile_specs(
            _specs(2), implement=False
        )
        assert cached.stats.cache_hits == 2
        for record in cached.records:
            assert "attempts" not in record
            assert "retry_history" not in record
