"""Number formats: encode/decode round trips and alignment semantics
(property-based where it matters)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.formats import (
    FPFields,
    align_group,
    decode_int,
    decode_unsigned,
    encode_int,
    group_scale,
    int_range,
    quantize_to_fp,
    unpack_fp,
    wrap_to_width,
)
from repro.spec import BF16, FP4, FP8


class TestIntCodec:
    @given(st.integers(-128, 127))
    def test_roundtrip_int8(self, v):
        assert decode_int(encode_int(v, 8)) == v

    @given(st.integers(2, 20), st.data())
    def test_roundtrip_any_width(self, bits, data):
        lo, hi = int_range(bits)
        v = data.draw(st.integers(lo, hi))
        assert decode_int(encode_int(v, bits)) == v

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            encode_int(8, 4)
        with pytest.raises(SimulationError):
            encode_int(-9, 4)

    def test_lsb_first_convention(self):
        assert encode_int(1, 4) == [1, 0, 0, 0]
        assert encode_int(-1, 4) == [1, 1, 1, 1]
        assert encode_int(-8, 4) == [0, 0, 0, 1]

    @given(st.integers(-(10 ** 9), 10 ** 9), st.integers(2, 24))
    def test_wrap_to_width_is_mod_2n(self, v, bits):
        w = wrap_to_width(v, bits)
        lo, hi = int_range(bits)
        assert lo <= w <= hi
        assert (w - v) % (1 << bits) == 0

    def test_decode_unsigned(self):
        assert decode_unsigned([1, 0, 1]) == 5

    def test_non_binary_rejected(self):
        with pytest.raises(SimulationError):
            decode_int([0, 2, 0])


class TestFPFields:
    @pytest.mark.parametrize("fmt", [FP4, FP8, BF16])
    def test_pack_unpack_roundtrip(self, fmt):
        import random

        rng = random.Random(fmt.bits)
        for _ in range(50):
            f = FPFields(
                sign=rng.randint(0, 1),
                exponent=rng.randrange(1 << fmt.exponent),
                mantissa=rng.randrange(1 << fmt.mantissa),
                fmt=fmt,
            )
            assert unpack_fp(f.pack_bits(), fmt) == f

    def test_fp8_values(self):
        # 1.0 in E4M3: e = bias = 7, m = 0.
        one = FPFields(sign=0, exponent=7, mantissa=0, fmt=FP8)
        assert one.to_float() == pytest.approx(1.0)
        assert one.signed_significand() == 8  # 1.000 -> 1000b

    def test_subnormal_value(self):
        sub = FPFields(sign=0, exponent=0, mantissa=1, fmt=FP8)
        assert sub.to_float() == pytest.approx(2.0 ** (1 - 7) / 8)
        assert sub.signed_significand() == 1

    def test_negative_significand(self):
        f = FPFields(sign=1, exponent=7, mantissa=3, fmt=FP8)
        assert f.signed_significand() == -11

    @pytest.mark.parametrize("fmt", [FP4, FP8])
    def test_quantize_roundtrip_exact_values(self, fmt):
        """Every representable normal value must quantize to itself."""
        for e in range(1, 1 << fmt.exponent):
            for m in range(1 << fmt.mantissa):
                f = FPFields(sign=0, exponent=e, mantissa=m, fmt=fmt)
                q = quantize_to_fp(f.to_float(), fmt)
                assert q.to_float() == pytest.approx(f.to_float())

    @given(st.floats(-200.0, 200.0, allow_nan=False))
    @settings(max_examples=100)
    def test_quantize_error_bounded_fp8(self, value):
        q = quantize_to_fp(value, FP8)
        fmax = FPFields(
            sign=0,
            exponent=(1 << FP8.exponent) - 1,
            mantissa=(1 << FP8.mantissa) - 1,
            fmt=FP8,
        ).to_float()
        if abs(value) > fmax:
            assert abs(q.to_float()) == pytest.approx(fmax)
        elif value != 0:
            # Relative error within half a mantissa step (normals).
            if abs(value) >= 2.0 ** (1 - FP8.bias):
                rel = abs(q.to_float() - value) / abs(value)
                assert rel <= 2.0 ** (-FP8.mantissa - 1) + 1e-9

    def test_quantize_zero(self):
        q = quantize_to_fp(0.0, FP8)
        assert q.to_float() == 0.0


class TestAlignment:
    def test_alignment_shifts_to_max_exponent(self):
        fields = [
            FPFields(sign=0, exponent=7, mantissa=0, fmt=FP8),  # 1.0
            FPFields(sign=0, exponent=5, mantissa=0, fmt=FP8),  # 0.25
        ]
        aligned, emax = align_group(fields)
        assert emax == 7
        assert aligned == [8, 2]  # 1.000 and 1.000>>2

    def test_alignment_truncates_toward_minus_inf(self):
        fields = [
            FPFields(sign=1, exponent=7, mantissa=1, fmt=FP8),  # -1.125
            FPFields(sign=0, exponent=8, mantissa=0, fmt=FP8),
        ]
        aligned, _ = align_group(fields)
        # -9 >> 1 == -5 in Python (floor), matching the netlist.
        assert aligned[0] == -5

    def test_group_scale_reconstructs_value(self):
        fields = [FPFields(sign=0, exponent=9, mantissa=4, fmt=FP8)]
        aligned, emax = align_group(fields)
        value = aligned[0] * group_scale(FP8, emax)
        assert value == pytest.approx(fields[0].to_float())

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1), st.integers(0, 15), st.integers(0, 7)
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_property_alignment_error_bound(self, raw):
        """Aligned-int dot contribution differs from the exact FP value
        by less than one unit of the shared scale per operand."""
        fields = [
            FPFields(sign=s, exponent=e, mantissa=m, fmt=FP8)
            for s, e, m in raw
        ]
        aligned, emax = align_group(fields)
        scale = group_scale(FP8, emax)
        for f, a in zip(fields, aligned):
            assert abs(a * scale - f.to_float()) < scale + 1e-12

    def test_empty_group_rejected(self):
        with pytest.raises(SimulationError):
            align_group([])
