"""Multi-corner PVT signoff: corner model, corner-characterized SCL
cache, flow integration and worst-corner escalation.

The corner model is pure arithmetic over the process model, so most
checks are exact; the flow-level checks run on the small 8x8 spec to
keep the netlist work in milliseconds.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.errors import SpecificationError, TimingError
from repro.signoff import (
    CORNER_SET_PRESETS,
    SIGNOFF3,
    SIGNOFF_CORNERS,
    TYPICAL,
    Corner,
    CornerSet,
    corner_power,
    parse_corners,
)
from repro.tech.process import CORNERS, GENERIC_40NM


class TestCornerModel:
    def test_nominal_corner_is_identity(self, process):
        tt = SIGNOFF_CORNERS["TT"]
        assert tt.timing_derate(process) == pytest.approx(1.0)
        assert tt.energy_scale(process) == pytest.approx(1.0)
        assert tt.leakage_scale(process) == pytest.approx(1.0)

    def test_composition_axes_multiply(self, process):
        ss = SIGNOFF_CORNERS["SS"]
        expected = (
            CORNERS["SS"].delay_factor
            * process.delay_scale(ss.vdd(process))
            * process.temperature_delay_scale(ss.temp_c)
        )
        assert ss.timing_derate(process) == pytest.approx(expected)
        # Each axis contributes: dropping any one lowers the derate.
        no_droop = Corner("x", "SS", vdd_scale=1.0, temp_c=125.0)
        no_heat = Corner("y", "SS", vdd_scale=0.98, temp_c=25.0)
        assert no_droop.timing_derate(process) < ss.timing_derate(process)
        assert no_heat.timing_derate(process) < ss.timing_derate(process)

    def test_derate_ordering_ss_tt_ff(self, process):
        derates = {
            name: c.timing_derate(process)
            for name, c in SIGNOFF_CORNERS.items()
        }
        assert derates["SS"] > derates["TT"] > derates["FF"]

    def test_ff_is_the_power_envelope(self, process):
        ff = SIGNOFF_CORNERS["FF"]
        assert ff.energy_scale(process) > 1.0  # CV^2 at overdrive
        # Hot FF at overdrive leaks far more than nominal TT.
        assert ff.leakage_scale(process) > 5.0

    def test_vdd_clamped_into_process_window(self, process):
        high = Corner("hot", "TT", vdd_scale=10.0)
        low = Corner("cold", "TT", vdd_scale=0.01)
        assert high.vdd(process) == process.vdd_max
        assert low.vdd(process) == process.vdd_min

    def test_unknown_process_corner_rejected(self):
        with pytest.raises(SpecificationError):
            Corner("bad", "XX")

    def test_temperature_model(self, process):
        assert process.temperature_delay_scale(25.0) == pytest.approx(1.0)
        assert process.temperature_delay_scale(125.0) > 1.0
        assert process.temperature_delay_scale(-40.0) < 1.0
        assert process.temperature_leakage_scale(125.0) > 5.0
        assert process.temperature_leakage_scale(-40.0) < 0.5


class TestCornerSet:
    def test_presets(self, process):
        assert TYPICAL.names == ("TT",)
        assert SIGNOFF3.names == ("SS", "TT", "FF")
        assert SIGNOFF3.worst_timing(process).name == "SS"
        assert set(CORNER_SET_PRESETS) == {"typical", "signoff3"}

    def test_parse_names_and_presets(self):
        assert parse_corners("SS,TT,FF").names == ("SS", "TT", "FF")
        assert parse_corners("ss , tt").names == ("SS", "TT")
        assert parse_corners("signoff3") is SIGNOFF3
        assert parse_corners("typical") is TYPICAL

    def test_parse_rejects_unknown_and_empty(self):
        with pytest.raises(SpecificationError):
            parse_corners("SS,XX")
        with pytest.raises(SpecificationError):
            parse_corners("")
        with pytest.raises(SpecificationError):
            parse_corners(" , ,")

    def test_duplicates_rejected(self):
        ss = SIGNOFF_CORNERS["SS"]
        with pytest.raises(SpecificationError):
            CornerSet("dup", (ss, ss))

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            CornerSet("none", ())


class TestCornerScl:
    def test_cache_key_carries_corner(self, library, process):
        from repro.scl.cache import scl_cache_key

        base = scl_cache_key(library, process)
        ss = scl_cache_key(library, process, SIGNOFF_CORNERS["SS"])
        ff = scl_cache_key(library, process, SIGNOFF_CORNERS["FF"])
        assert len({base, ss, ff}) == 3
        # Same corner -> same key (stable across calls).
        assert ss == scl_cache_key(library, process, SIGNOFF_CORNERS["SS"])

    def test_corner_characterization_derates_records(self, process):
        from repro.scl.library import default_scl

        base = default_scl(process)
        ss = default_scl(process, corner=SIGNOFF_CORNERS["SS"])
        assert ss.corner is SIGNOFF_CORNERS["SS"]
        derate = SIGNOFF_CORNERS["SS"].timing_derate(process)
        r0 = base.lookup("adder_tree", "cmp42-fa0-n", 64)
        r1 = ss.lookup("adder_tree", "cmp42-fa0-n", 64)
        # Real derated STA: the delay moves with (close to, because the
        # slew terms are not derated) the composed corner derate, and
        # never by less than 1x or more than the full derate.
        assert 1.0 < r1.delay_ns / r0.delay_ns <= derate + 1e-9
        assert r1.delay_ns / r0.delay_ns == pytest.approx(derate, rel=0.02)
        # Leakage carries sigma x DIBL x temperature; area is intensive.
        assert r1.leakage_mw / r0.leakage_mw == pytest.approx(
            SIGNOFF_CORNERS["SS"].leakage_scale(process), rel=1e-6
        )
        assert r1.area_um2 == r0.area_um2
        assert r1.cells == r0.cells

    def test_corner_artifact_roundtrips_across_processes(self, tmp_path):
        """A corner library persisted by one process loads (source
        'disk', identical records) in a fresh interpreter."""
        import repro

        env = dict(os.environ)
        env["REPRO_SCL_CACHE"] = str(tmp_path)
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = """
import json, sys
from repro.scl.library import default_scl, default_scl_source
from repro.signoff import SIGNOFF_CORNERS
ss = default_scl(corner=SIGNOFF_CORNERS["SS"])
rec = ss.lookup("ofu", "c4-rpl", 16)
print(json.dumps({
    "source": default_scl_source(corner=SIGNOFF_CORNERS["SS"]),
    "delay": rec.delay_ns,
    "entries": ss.entry_count(),
}))
"""
        runs = [
            json.loads(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True,
                    text=True,
                    check=True,
                    env=env,
                ).stdout
            )
            for _ in range(2)
        ]
        assert runs[0]["source"] == "built"
        assert runs[1]["source"] == "disk"
        assert runs[0]["delay"] == runs[1]["delay"]
        assert runs[0]["entries"] == runs[1]["entries"]

    def test_corner_artifact_never_serves_other_corner(
        self, tmp_path, monkeypatch, library, process
    ):
        """The SS artifact must read as a miss for FF/nominal lookups
        (distinct keys), not as silently wrong numbers."""
        monkeypatch.setenv("REPRO_SCL_CACHE", str(tmp_path))
        from repro.scl.builder import build_default_scl
        from repro.scl.cache import load_cached_scl, store_cached_scl

        ss = SIGNOFF_CORNERS["SS"]
        scl = build_default_scl(
            library, process, tree_sizes=(8,), corner=ss
        )
        # Partial grid is fine for cache plumbing checks.
        path = store_cached_scl(scl)
        assert path is not None and path.is_file()
        loaded = load_cached_scl(library, process, ss)
        assert loaded is not None
        assert loaded.entry_count() == scl.entry_count()
        assert load_cached_scl(library, process) is None
        assert (
            load_cached_scl(library, process, SIGNOFF_CORNERS["FF"]) is None
        )


def _small_signoff_spec():
    """Same 8x8 point as the ``small_spec`` fixture, constructible from
    the class-scoped fixture below (scopes cannot mix)."""
    from repro.spec import INT4, MacroSpec

    return MacroSpec(
        height=8,
        width=8,
        mcr=2,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=400.0,
    )


class TestMultiCornerSignoff:
    @pytest.fixture(scope="class")
    def implemented(self):
        from repro.compiler.flow import ImplementSession
        from repro.search.algorithm import search

        spec = _small_signoff_spec()
        result = search(spec)
        arch = result.select()
        session = ImplementSession(spec, corners=SIGNOFF3)
        return session.implement(arch.arch)

    def test_per_corner_results(self, implemented):
        report = implemented.signoff
        assert report is not None
        assert [r.corner.name for r in report.results] == ["SS", "TT", "FF"]
        assert report.clock_period_ns == pytest.approx(
            _small_signoff_spec().mac_period_ns
        )
        # fmax ordering follows the derates.
        assert (
            report.corner("SS").fmax_mhz
            < report.corner("TT").fmax_mhz
            < report.corner("FF").fmax_mhz
        )

    def test_tt_corner_matches_nominal_analysis(self, implemented):
        tt = implemented.signoff.corner("TT")
        # The nominal path probes at a 1e9 ns period, which costs ~1e-8
        # relative float precision versus the corner's real-period run.
        assert tt.min_period_ns == pytest.approx(
            implemented.min_period_ns, rel=1e-6
        )
        assert tt.power.total_mw == pytest.approx(
            implemented.power.total_mw, rel=1e-9
        )

    def test_corner_timing_scales_with_derate(self, implemented):
        ss = implemented.signoff.corner("SS")
        # Global derate: close to linear in min-period (setup windows
        # and clock-to-Q launch offsets are not derated, so the full
        # macro lands a few percent under the composed derate).
        assert ss.min_period_ns / implemented.min_period_ns == pytest.approx(
            ss.timing_derate, rel=0.05
        )
        assert ss.min_period_ns > implemented.min_period_ns

    def test_corner_power_scaling(self, implemented, process):
        nominal = implemented.power
        ff = implemented.signoff.corner("FF")
        corner = ff.corner
        scaled = corner_power(nominal, corner, process)
        assert ff.power.switching_mw == pytest.approx(
            nominal.switching_mw * corner.energy_scale(process)
        )
        assert ff.power.leakage_mw == pytest.approx(
            nominal.leakage_mw * corner.leakage_scale(process)
        )
        assert scaled.total_mw == pytest.approx(ff.power.total_mw)
        assert ff.power.vdd == pytest.approx(corner.vdd(process))

    def test_worst_corner_and_clean(self, implemented):
        report = implemented.signoff
        assert report.worst.corner.name == "SS"
        assert report.clean == report.corner("SS").met
        assert implemented.signoff_clean == (
            implemented.drc.clean
            and implemented.lvs.clean
            and report.clean
        )
        assert implemented.worst_corner == "SS"

    def test_report_projection_and_describe(self, implemented):
        data = implemented.signoff.to_dict()
        assert data["worst_corner"] == "SS"
        assert set(data["corners"]) == {"SS", "TT", "FF"}
        for entry in data["corners"].values():
            assert {"fmax_mhz", "power_mw", "slack_ns", "timing_met"} <= set(
                entry
            )
        text = implemented.signoff.describe()
        assert "SS" in text and "worst corner" in text

    def test_unknown_corner_lookup_raises(self, implemented):
        with pytest.raises(TimingError):
            implemented.signoff.corner("XX")

    def test_signoff_report_requires_results(self):
        from repro.signoff.evaluate import SignoffReport

        with pytest.raises(TimingError):
            SignoffReport(corner_set="x", clock_period_ns=1.0, results=())

    def test_nominal_only_flow_unchanged(self, small_spec):
        """No corners -> no signoff report, historical semantics."""
        from repro.compiler.flow import ImplementSession
        from repro.search.algorithm import search

        arch = search(small_spec).select().arch
        impl = ImplementSession(small_spec).implement(arch)
        assert impl.signoff is None
        assert impl.worst_corner is None
        assert impl.timing_met_signoff == impl.timing.met


class TestSearcherSignoff:
    def test_search_records_signoff_slack(self, small_spec, scl):
        from repro.scl.library import default_scl
        from repro.search.algorithm import MSOSearcher

        worst = SIGNOFF3.worst_timing(GENERIC_40NM)
        signoff_scl = default_scl(corner=worst)
        searcher = MSOSearcher(scl, signoff_scl=signoff_scl)
        result = searcher.search(small_spec)
        assert result.signoff_corner == "SS"
        assert result.frontier
        for est in result.frontier:
            assert result.signoff_slack(est) is not None
        # SS slack is strictly tighter than TT slack.
        for est in result.frontier:
            assert result.signoff_slack(est) < est.slack_ns

    def test_select_prefers_signoff_met(self, small_spec, scl):
        from repro.scl.library import default_scl
        from repro.search.algorithm import MSOSearcher

        worst = SIGNOFF3.worst_timing(GENERIC_40NM)
        searcher = MSOSearcher(
            scl, signoff_scl=default_scl(corner=worst)
        )
        result = searcher.search(small_spec)
        selected = result.select()
        slack = result.signoff_slack(selected)
        met = [
            e
            for e in result.frontier
            if result.signoff_slack(e) is not None
            and result.signoff_slack(e) >= -1e-9
        ]
        if met:
            assert slack >= -1e-9

    def test_compile_escalates_to_ss_clean(self, small_spec):
        """End-to-end on the small spec: the corner-aware compile must
        sign off clean at the worst corner."""
        from repro.compiler.syndcim import SynDCIM

        result = SynDCIM(corners=SIGNOFF3).compile(small_spec)
        impl = result.implementation
        assert impl is not None
        assert impl.signoff is not None
        assert impl.signoff_clean, impl.signoff.describe()


class TestRecordsAndBatch:
    def test_implementation_record_carries_corners(self, small_spec):
        from repro.compiler.syndcim import SynDCIM, result_to_record

        result = SynDCIM(corners=SIGNOFF3).compile(small_spec)
        record = result_to_record(result)
        signoff = record["implementation"]["signoff"]
        assert signoff is not None
        assert set(signoff["corners"]) == {"SS", "TT", "FF"}
        assert record["search"]["signoff_corner"] == "SS"
        assert record["search"]["signoff_slacks"]
        # The record is JSON-serializable as the cache requires.
        json.dumps(record)

    def test_job_key_covers_corners(self, small_spec):
        from repro.batch.jobs import CompileJob

        plain = CompileJob(spec=small_spec)
        corner = CompileJob(spec=small_spec, corners=("SS", "TT", "FF"))
        assert plain.key() != corner.key()
        assert corner.payload()["options"]["corners"] == ["SS", "TT", "FF"]
        assert (
            CompileJob(spec=small_spec, corners=("SS", "TT", "FF")).key()
            == corner.key()
        )

    def test_execute_job_with_corners(self, small_spec):
        from repro.compiler.syndcim import execute_job

        job_payload = {
            "type": "compile",
            "spec": small_spec.to_dict(),
            "options": {"implement": True, "corners": ["SS", "TT", "FF"]},
        }
        record = execute_job(job_payload)
        assert record["status"] == "ok"
        signoff = record["implementation"]["signoff"]
        assert signoff["worst_corner"] == "SS"
        assert signoff["clean"] is True

    def test_execute_job_rejects_unknown_corner(self, small_spec):
        from repro.compiler.syndcim import execute_job

        record = execute_job(
            {
                "type": "compile",
                "spec": small_spec.to_dict(),
                "options": {"implement": False, "corners": ["XX"]},
            }
        )
        # A bad corner name is a malformed job, not an infeasible
        # design: it must come back as a (non-cacheable) error record.
        assert record["status"] == "error"
        assert "unknown signoff corner" in record["error"]

    def test_batch_engine_forwards_corners(self, small_spec, tmp_path):
        """Inline (jobs=1) batch run: the corner flag reaches the
        worker entry point and the records carry per-corner metrics."""
        from repro.batch.engine import BatchCompiler

        engine = BatchCompiler(
            jobs=1,
            cache_dir=tmp_path,
            corners=("SS", "TT"),
        )
        result = engine.compile_specs([small_spec], implement=True)
        record = result.records[0]
        assert record["status"] == "ok"
        assert set(record["implementation"]["signoff"]["corners"]) == {
            "SS",
            "TT",
        }
        # Cached replay returns the same corner payload.
        replay = engine.compile_specs([small_spec], implement=True)
        assert replay.stats.cache_hits == 1
        assert (
            replay.records[0]["implementation"]["signoff"]
            == record["implementation"]["signoff"]
        )
        # A corner-less engine on the same cache dir misses (distinct
        # job keys) instead of serving corner records.
        plain = BatchCompiler(jobs=1, cache_dir=tmp_path)
        plain_result = plain.compile_specs([small_spec], implement=False)
        assert plain_result.stats.cache_hits == 0
