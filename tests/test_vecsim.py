"""Differential equivalence: vectorized vs scalar gate-level simulator.

The vectorized engine's contract is *bit-for-bit* agreement with the
pinned scalar reference (:class:`repro.sim.gatesim.GateSimulator`) on
every net, for every generated module kind — adder trees, shift-adder,
OFU, controller, full macro — including forced nets, sequential state
and reset, over seeded random vector batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import MacroArchitecture
from repro.errors import SimulationError
from repro.rtl.gen.addertree import generate_adder_tree
from repro.rtl.gen.controller import generate_controller
from repro.rtl.gen.macro import generate_macro
from repro.rtl.gen.ofu import OFUConfig, generate_ofu
from repro.rtl.gen.shiftadder import accumulator_width, generate_shift_adder
from repro.rtl.ir import Module, NetlistBuilder
from repro.sim.formats import int_range
from repro.sim.gatesim import GateSimulator
from repro.sim.vecsim import VecSim, pack_lanes, unpack_lanes
from repro.spec import INT4, MacroSpec
from repro.tech.stdcells import Cell, StdCellLibrary, default_library

from macro_tb import MacroTestbench

LIB = default_library()
SEED = 20260729


def _assert_all_nets_equal(
    vec: VecSim, scalar: GateSimulator, lane: int, context: str
) -> None:
    """Every net of the module must agree between the vectorized lane
    and the scalar reference."""
    view = vec._view
    lanes = vec.lanes_snapshot()
    for net, nid in view.net_id.items():
        got = int(lanes[nid, lane])
        want = scalar.values[net]
        assert got == want, (
            f"{context}: net {net} lane {lane}: vec={got} scalar={want}"
        )


def _drive_both(
    vec: VecSim,
    scalars: list,
    net: str,
    per_lane: np.ndarray,
) -> None:
    vec.set_input(net, per_lane)
    for lane, sim in enumerate(scalars):
        sim.set_input(net, int(per_lane[lane]))


class TestCombinationalModules:
    @pytest.mark.parametrize("style", ["rca", "cmp42", "mixed"])
    def test_adder_tree_every_net(self, style):
        module, _stats = generate_adder_tree(16, style)
        batch = 64
        rng = np.random.default_rng(SEED)
        stim = rng.integers(0, 2, size=(16, batch))
        vec = VecSim(module, LIB, batch)
        scalars = [GateSimulator(module, LIB) for _ in range(4)]
        for i in range(16):
            vec.set_input(f"in[{i}]", stim[i])
            for lane, sim in enumerate(scalars):
                sim.set_input(f"in[{i}]", int(stim[i, lane]))
        vec.evaluate()
        for sim in scalars:
            sim.evaluate()
        for lane, sim in enumerate(scalars):
            _assert_all_nets_equal(vec, sim, lane, f"tree[{style}]")
        # And the sum is numerically right on every lane (unsigned).
        width = len([p for p in module.ports if p.startswith("sum[")])
        sums = vec.bus("sum", width).astype(np.int64) @ (
            1 << np.arange(width, dtype=np.int64)
        )
        assert (sums == stim.sum(axis=0)).all()

    @pytest.mark.parametrize("input_register", [False, True])
    def test_ofu_every_net(self, input_register):
        cfg = OFUConfig(
            columns=4, input_width=6, input_register=input_register
        )
        module = generate_ofu(cfg)
        batch = 32
        rng = np.random.default_rng(SEED + 1)
        vec = VecSim(module, LIB, batch)
        scalars = [GateSimulator(module, LIB) for _ in range(3)]
        lo, hi = int_range(cfg.input_width)
        words = rng.integers(lo, hi + 1, size=(cfg.columns, batch))
        for j in range(cfg.columns):
            vec.set_bus_int(f"a{j}", words[j], cfg.input_width)
            for lane, sim in enumerate(scalars):
                sim.set_bus(
                    f"a{j}",
                    [
                        (int(words[j, lane]) >> i) & 1
                        for i in range(cfg.input_width)
                    ],
                )
        subs = rng.integers(0, 2, size=(cfg.stages, batch))
        for s in range(cfg.stages):
            _drive_both(vec, scalars, f"sub[{s}]", subs[s])
        cycles = 2 if input_register else 1
        for _ in range(cycles):
            if input_register:
                vec.clock()
                for sim in scalars:
                    sim.clock()
            else:
                vec.evaluate()
                for sim in scalars:
                    sim.evaluate()
        for lane, sim in enumerate(scalars):
            _assert_all_nets_equal(vec, sim, lane, "ofu")


class TestSequentialModules:
    def test_shift_adder_state_and_reset(self):
        tree_w, k = 4, 3
        module = generate_shift_adder(tree_w, k)
        acc_w = accumulator_width(tree_w, k)
        batch = 16
        rng = np.random.default_rng(SEED + 2)
        vec = VecSim(module, LIB, batch)
        scalars = [GateSimulator(module, LIB) for _ in range(3)]
        vec.reset_state()
        for sim in scalars:
            sim.reset_state()
        for cyc in range(6):
            t_bits = rng.integers(0, 2, size=(tree_w, batch))
            for i in range(tree_w):
                _drive_both(vec, scalars, f"t[{i}]", t_bits[i])
            ctl = 1 if cyc == 0 else 0
            _drive_both(vec, scalars, "neg", np.full(batch, ctl))
            _drive_both(vec, scalars, "clear", np.full(batch, ctl))
            vec.clock()
            for sim in scalars:
                sim.clock()
            for lane, sim in enumerate(scalars):
                _assert_all_nets_equal(vec, sim, lane, f"sna cyc{cyc}")
        accs = vec.bus_int("acc", acc_w)
        for lane, sim in enumerate(scalars):
            assert int(accs[lane]) == sim.bus_int("acc", acc_w)
        # reset with value=1 matches the scalar semantics too.
        vec.reset_state(1)
        for sim in scalars:
            sim.reset_state(1)
        vec.evaluate()
        for sim in scalars:
            sim.evaluate()
        for lane, sim in enumerate(scalars):
            _assert_all_nets_equal(vec, sim, lane, "sna reset1")

    def test_controller_sequences(self):
        module = generate_controller(
            prelatency=2, input_bits=3, total_cycles=8
        )
        batch = 8
        vec = VecSim(module, LIB, batch)
        scalars = [GateSimulator(module, LIB) for _ in range(2)]
        vec.reset_state()
        for sim in scalars:
            sim.reset_state()
        # Lane 0 starts on cycle 0; lane 1 never starts.
        start = np.zeros(batch, dtype=np.int64)
        start[0] = 1
        for cyc in range(10):
            _drive_both(vec, scalars, "start", start if cyc == 0 else start * 0)
            vec.clock()
            for sim in scalars:
                sim.clock()
            for lane, sim in enumerate(scalars):
                _assert_all_nets_equal(vec, sim, lane, f"ctrl cyc{cyc}")


class TestForcing:
    def test_forced_nets_match_scalar(self):
        module, _ = generate_adder_tree(8, "mixed")
        internal = next(
            n for n in module.nets if n not in module.ports
        )
        batch = 8
        rng = np.random.default_rng(SEED + 3)
        stim = rng.integers(0, 2, size=(8, batch))
        forced = rng.integers(0, 2, size=batch)
        vec = VecSim(module, LIB, batch)
        scalars = [GateSimulator(module, LIB) for _ in range(batch)]
        for i in range(8):
            _drive_both(vec, scalars, f"in[{i}]", stim[i])
        vec.force(internal, forced)
        for lane, sim in enumerate(scalars):
            sim.force(internal, int(forced[lane]))
        vec.evaluate()
        for sim in scalars:
            sim.evaluate()
        for lane, sim in enumerate(scalars):
            _assert_all_nets_equal(vec, sim, lane, "forced")
        # Releasing restores the natural value on every lane.
        vec.release(internal)
        for sim in scalars:
            sim.release(internal)
        vec.evaluate()
        for sim in scalars:
            sim.evaluate()
        for lane, sim in enumerate(scalars):
            _assert_all_nets_equal(vec, sim, lane, "released")

    def test_memory_outputs_are_forceable(self):
        m = Module("mem")
        m.add_port("wl", "input")
        m.add_port("y", "output")
        m.add_net("rd")
        m.add_instance("cell", "DCIM6T", {"WL": "wl", "RD": "rd"})
        m.add_instance("buf", "BUF_X2", {"A": "rd", "Y": "y"})
        vec = VecSim(m, LIB, batch=4)
        lanes = np.array([1, 0, 1, 0])
        vec.force("rd", lanes)
        assert (vec.net("y") == lanes).all()


class TestFullMacro:
    def test_macro_matches_scalar_and_model(self, small_spec, default_arch):
        from repro.verify.testbench import VecMacroTestbench

        batch = 12
        rng = np.random.default_rng(SEED + 4)
        scalar_tb = MacroTestbench(small_spec, default_arch)
        vec_tb = VecMacroTestbench(small_spec, default_arch, batch=batch)
        lo, hi = int_range(small_spec.input_width)
        for bank in range(small_spec.mcr):
            w = rng.integers(
                lo, hi + 1,
                size=(small_spec.height, vec_tb.model.n_groups),
            )
            scalar_tb.load_weights(bank, w, INT4)
            vec_tb.load_weights(bank, w, INT4)
            xs = rng.integers(
                lo, hi + 1, size=(batch, small_spec.height)
            )
            got = vec_tb.run_mac(xs, bank)
            expected = vec_tb.expected(xs, bank)
            assert (got == expected).all(), f"bank {bank} model mismatch"
            for lane in (0, batch // 2, batch - 1):
                assert list(got[lane]) == scalar_tb.run_mac(
                    list(xs[lane]), bank
                ), f"bank {bank} lane {lane} scalar mismatch"


class TestSemantics:
    def test_sequential_missing_q_raises_in_both(self):
        b = NetlistBuilder("noq")
        d = b.inputs("d")[0]
        clk = b.inputs("clk")[0]
        b.module.set_clocks([clk])
        b.module.add_instance("ff", "DFF_X1", {"D": d, "CK": clk})
        m = b.finish()
        with pytest.raises(SimulationError, match="no Q connection"):
            GateSimulator(m, LIB)
        with pytest.raises(SimulationError, match="no Q connection"):
            VecSim(m, LIB, batch=4)

    def test_combinational_cycle_raises(self):
        m = Module("loop")
        m.add_port("y", "output")
        m.add_net("a")
        m.add_net("b")
        m.add_instance("i1", "INV_X1", {"A": "a", "Y": "b"})
        m.add_instance("i2", "INV_X1", {"A": "b", "Y": "a"})
        m.add_instance("i3", "BUF_X2", {"A": "a", "Y": "y"})
        with pytest.raises(SimulationError, match="levelization failed"):
            VecSim(m, LIB, batch=4)

    def test_unknown_net_and_bad_stimulus_rejected(self):
        b = NetlistBuilder("x")
        a = b.inputs("a")[0]
        y = b.outputs("y")[0]
        b.cell("BUF_X2", A=a, Y=y)
        vec = VecSim(b.finish(), LIB, batch=4)
        with pytest.raises(SimulationError):
            vec.net("nope")
        with pytest.raises(SimulationError):
            vec.set_input("nope", 1)
        with pytest.raises(SimulationError):
            vec.force("nope", 1)
        with pytest.raises(SimulationError):
            vec.set_input("a", np.array([1, 0]))  # wrong lane count
        with pytest.raises(SimulationError):
            VecSim(b.finish(), LIB, batch=0)
        # Fabric-driven nets refuse the bulk free-net path.
        with pytest.raises(SimulationError, match="fabric-driven"):
            vec.drive_nets(
                np.array([vec.net_id("y")]), np.array([1])
            )

    def test_scalar_broadcast_and_bus_helpers(self):
        b = NetlistBuilder("bus")
        d = b.inputs("d", 4)
        q = b.outputs("q", 4)
        for i in range(4):
            b.cell("BUF_X2", A=d[i], Y=q[i])
        vec = VecSim(b.finish(), LIB, batch=130)  # > 2 words, odd tail
        vec.set_bus("d", [1, 0, 1, 1])  # LSB first: -3 as INT4
        assert (vec.bus_int("q", 4) == -3).all()
        vals = np.arange(130) % 13 - 6
        vec.set_bus_int("d", vals, 4)
        assert (vec.bus_int("q", 4) == vals).all()

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(SEED + 5)
        for batch in (1, 63, 64, 65, 130, 4096):
            words = (batch + 63) // 64
            bits = rng.integers(0, 2, size=(3, batch)).astype(np.uint8)
            packed = pack_lanes(bits, words)
            assert packed.shape == (3, words)
            assert (unpack_lanes(packed, batch) == bits).all()

    def test_truth_table_fallback_for_custom_cell(self):
        """A cell whose function is unknown to the kernel registry must
        still simulate, via the derived minterm kernel."""

        def majority3(p):
            return {"Y": 1 if (p["A"] + p["B"] + p["C"]) >= 2 else 0}

        lib = StdCellLibrary()
        lib.add(
            Cell(
                name="MAJ3",
                area_um2=3.0,
                input_caps_ff={"A": 1.0, "B": 1.0, "C": 1.0},
                outputs=("Y",),
                arcs=(),
                leakage_nw=1.0,
                internal_energy_fj={"Y": 1.0},
                function=majority3,
            )
        )
        m = Module("maj")
        for p in ("a", "b", "c"):
            m.add_port(p, "input")
        m.add_port("y", "output")
        m.add_instance(
            "u1", "MAJ3", {"A": "a", "B": "b", "C": "c", "Y": "y"}
        )
        vec = VecSim(m, lib, batch=8)
        scalar = GateSimulator(m, lib)
        rng = np.random.default_rng(SEED + 6)
        stim = rng.integers(0, 2, size=(3, 8))
        for i, p in enumerate(("a", "b", "c")):
            vec.set_input(p, stim[i])
            scalar.set_input(p, int(stim[i, 0]))
        scalar.evaluate()
        got = vec.net("y")
        assert int(got[0]) == scalar.net("y")
        assert (got == (stim.sum(axis=0) >= 2)).all()


class TestTailWordGuard:
    """Batch sizes that don't fill the last uint64 word leave unused
    high bits in every packed row.  The engine's contract: those bits
    never reach an observable — not through forces, bulk drives,
    sequential state, scalar broadcasts (which set whole words to all
    ones), or ``unpack_lanes`` — and a ragged batch agrees lane for
    lane with a word-aligned batch under identical stimulus."""

    @pytest.mark.parametrize("batch", [5, 63, 97, 130])
    def test_ragged_batch_matches_word_aligned_reference(self, batch):
        tree_w, k = 4, 3
        module = generate_shift_adder(tree_w, k)
        acc_w = accumulator_width(tree_w, k)
        ref_batch = 256  # word-aligned reference, first `batch` lanes shared
        vec = VecSim(module, LIB, batch)
        ref = VecSim(module, LIB, ref_batch)
        rng = np.random.default_rng(SEED + 7)
        internal = next(n for n in module.nets if n not in module.ports)

        def drive(name, bits):
            vec.set_input(name, bits)
            padded = np.zeros(ref_batch, dtype=bits.dtype)
            padded[:batch] = bits
            ref.set_input(name, padded)

        vec.reset_state(1)  # all-ones state: the tail-word stress case
        ref.reset_state(1)
        for cyc in range(5):
            for i in range(tree_w):
                drive(f"t[{i}]", rng.integers(0, 2, size=batch))
            ctl = 1 if cyc == 0 else 0
            drive("neg", np.full(batch, ctl))
            drive("clear", np.full(batch, ctl))
            if cyc == 2:  # forced lanes mid-sequence
                forced = rng.integers(0, 2, size=batch)
                vec.force(internal, forced)
                padded = np.zeros(ref_batch, dtype=forced.dtype)
                padded[:batch] = forced
                ref.force(internal, padded)
            if cyc == 4:
                vec.release(internal)
                ref.release(internal)
            vec.clock()
            ref.clock()
            snap = vec.lanes_snapshot()
            ref_snap = ref.lanes_snapshot()
            assert snap.shape == (vec._view.n_nets, batch)
            assert set(np.unique(snap)) <= {0, 1}
            assert (snap == ref_snap[:, :batch]).all(), f"cycle {cyc}"
        accs = vec.bus_int("acc", acc_w)
        assert accs.shape == (batch,)
        assert (accs == ref.bus_int("acc", acc_w)[:batch]).all()

    @pytest.mark.parametrize("batch", [3, 65, 127])
    def test_scalar_broadcast_and_drive_nets_tail(self, batch):
        """Scalar broadcasts write all-ones words; drive_nets' scalar
        path does the same per net.  Neither may leak past the batch."""
        module, stats = generate_adder_tree(8, "rca")
        width = stats.output_width
        vec = VecSim(module, LIB, batch)
        ids = np.asarray(
            [vec.net_id(f"in[{i}]") for i in range(8)], dtype=np.int64
        )
        weights = 1 << np.arange(width, dtype=np.int64)

        def unsigned_sum():
            return vec.bus("sum", width).astype(np.int64) @ weights

        vec.drive_nets(ids, np.ones(8, dtype=np.uint8))  # scalar path
        for i in range(8):
            got = vec.net(f"in[{i}]")
            assert got.shape == (batch,) and (got == 1).all()
        total = unsigned_sum()
        assert (total == 8).all() and total.shape == (batch,)
        vec.set_input("in[0]", 0)  # scalar broadcast of zero
        assert (unsigned_sum() == 7).all()
        vec.set_input("in[0]", 1)  # and of one (all-ones words)
        assert (unsigned_sum() == 8).all()
        # unpack_lanes never returns bits past the batch.
        packed = pack_lanes(np.ones(batch, dtype=np.uint8), vec.words)
        assert unpack_lanes(packed, batch).shape == (batch,)
        assert (unpack_lanes(packed, batch) == 1).all()

    def test_sequential_state_tail_isolation(self):
        """reset_state(1) fills whole state words with ones; the lanes
        past the batch must not affect Q observables or propagate into
        downstream sums."""
        tree_w, k = 4, 2
        module = generate_shift_adder(tree_w, k)
        acc_w = accumulator_width(tree_w, k)
        batch = 7  # one ragged word
        vec = VecSim(module, LIB, batch)
        scalars = [GateSimulator(module, LIB) for _ in range(batch)]
        vec.reset_state(1)
        for sim in scalars:
            sim.reset_state(1)
        rng = np.random.default_rng(SEED + 8)
        for cyc in range(4):
            bits = rng.integers(0, 2, size=(tree_w, batch))
            for i in range(tree_w):
                _drive_both(vec, scalars, f"t[{i}]", bits[i])
            _drive_both(vec, scalars, "neg", np.zeros(batch, dtype=np.int64))
            _drive_both(vec, scalars, "clear", np.zeros(batch, dtype=np.int64))
            vec.clock()
            for sim in scalars:
                sim.clock()
            for lane, sim in enumerate(scalars):
                _assert_all_nets_equal(vec, sim, lane, f"tail-seq cyc{cyc}")
        accs = vec.bus_int("acc", acc_w)
        for lane, sim in enumerate(scalars):
            assert int(accs[lane]) == sim.bus_int("acc", acc_w)
