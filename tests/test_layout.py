"""Layout substrate: geometry, SDP placement, routing, DRC, LVS, GDS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import MacroArchitecture
from repro.errors import LayoutError
from repro.layout.drc import run_drc
from repro.layout.gds import read_gds_json, write_gds_json
from repro.layout.geometry import (
    Rect,
    bounding_box,
    half_perimeter,
    sweep_overlaps,
)
from repro.layout.lvs import run_lvs
from repro.layout.route import estimate_routing
from repro.layout.sdp import SDPParams, place_macro
from repro.rtl.gen.macro import generate_macro_with_array
from repro.spec import INT4, MacroSpec


@pytest.fixture(scope="module")
def placed_small(library):
    spec = MacroSpec(
        height=8, width=8, mcr=2, input_formats=(INT4,), weight_formats=(INT4,)
    )
    module, _ = generate_macro_with_array(spec, MacroArchitecture())
    flat = module.flatten()
    placement = place_macro(flat, library)
    return flat, placement


class TestGeometry:
    def test_rect_properties(self):
        r = Rect(1.0, 2.0, 4.0, 6.0)
        assert r.width == 3.0 and r.height == 4.0 and r.area == 12.0
        assert r.center == (2.5, 4.0)

    def test_degenerate_rejected(self):
        with pytest.raises(LayoutError):
            Rect(2.0, 0.0, 1.0, 1.0)

    def test_overlap_semantics(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 3, 3))
        assert not a.overlaps(Rect(2, 0, 4, 2))  # shared edge
        assert not a.overlaps(Rect(5, 5, 6, 6))

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(1, 1, 9, 9))
        assert not outer.contains(Rect(5, 5, 11, 9))

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 50), st.floats(0, 50), st.floats(0.5, 3), st.floats(0.5, 3)
            ),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sweep_matches_bruteforce(self, raw):
        rects = [
            (f"r{i}", Rect(x, y, x + w, y + h))
            for i, (x, y, w, h) in enumerate(raw)
        ]
        swept = {frozenset(p) for p in sweep_overlaps(rects)}
        brute = set()
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i][1].overlaps(rects[j][1]):
                    brute.add(frozenset((rects[i][0], rects[j][0])))
        assert swept == brute

    def test_hpwl(self):
        assert half_perimeter([(0, 0), (3, 4)]) == 7.0
        with pytest.raises(LayoutError):
            bounding_box([])


class TestSDP:
    def test_all_instances_placed(self, placed_small):
        flat, placement = placed_small
        assert set(placement.cells) == {i.name for i in flat.instances}

    def test_sram_cells_on_grid(self, placed_small, library):
        flat, placement = placed_small
        ys = set()
        for inst in flat.instances:
            if library.cell(inst.cell_name).is_memory:
                rect = placement.cells[inst.name]
                ys.add(round(rect.y0, 4))
        # Grid: row pitch equals the SRAM cell height (1.0 um).
        ys = sorted(ys)
        steps = {round(b - a, 4) for a, b in zip(ys, ys[1:])}
        assert steps == {1.0}

    def test_columns_ordered_left_to_right(self, placed_small):
        flat, placement = placed_small
        def col_x(c):
            xs = [
                placement.cells[i.name].x0
                for i in flat.instances
                if f"/col{c}_" in i.name or i.name.startswith(f"core_") and f"col{c}_" in i.name
            ]
            return min(xs)
        assert col_x(0) < col_x(3) < col_x(7)

    def test_utilization_reasonable(self, placed_small):
        _, placement = placed_small
        assert 0.3 < placement.utilization <= 0.95

    def test_params_validated(self):
        with pytest.raises(LayoutError):
            SDPParams(utilization=0.1)

    def test_outline_described(self, placed_small):
        _, placement = placed_small
        text = placement.describe()
        assert "mm^2" in text and "pitch" in text


class TestRouteDrcLvs:
    def test_drc_clean(self, placed_small, library):
        flat, placement = placed_small
        assert run_drc(flat, placement, library).clean

    def test_lvs_clean_and_detects_tamper(self, placed_small):
        flat, placement = placed_small
        report = run_lvs(flat, placement)
        assert report.clean
        # Tamper: drop an instance from the layout.
        broken_cells = dict(placement.cells)
        victim = next(iter(broken_cells))
        del broken_cells[victim]
        import dataclasses

        broken = dataclasses.replace(placement, cells=broken_cells)
        bad = run_lvs(flat, broken)
        assert not bad.clean
        assert any(m.kind == "missing" for m in bad.mismatches)

    def test_routing_estimate(self, placed_small, library, process):
        flat, placement = placed_small
        est = estimate_routing(flat, placement, library, process)
        assert est.total_wirelength_um > 0
        assert 0 < est.congestion < 1.0
        # wire loads are consistent with lengths
        some_net = max(est.net_lengths_um, key=est.net_lengths_um.get)
        assert est.net_caps_ff[some_net] == pytest.approx(
            process.wire_cap_ff(est.net_lengths_um[some_net])
        )

    def test_wire_load_fn_defaults_to_zero(self, placed_small, library, process):
        flat, placement = placed_small
        est = estimate_routing(flat, placement, library, process)
        fn = est.wire_load_fn()
        assert fn("nonexistent_net") == 0.0


class TestGDS:
    def test_roundtrip(self, placed_small, library):
        flat, placement = placed_small
        text = write_gds_json(flat, placement, library)
        back = read_gds_json(text)
        assert len(back["instances"]) == len(placement.cells)
        assert back["header"]["design"] == flat.name

    def test_layers_distinguish_sram(self, placed_small, library):
        flat, placement = placed_small
        back = read_gds_json(write_gds_json(flat, placement, library))
        layers = {rec["layer"] for rec in back["instances"].values()}
        assert 10 in layers and 20 in layers

    def test_truncated_stream_rejected(self, placed_small, library):
        flat, placement = placed_small
        text = write_gds_json(flat, placement, library)
        truncated = "\n".join(text.splitlines()[:-1])
        with pytest.raises(LayoutError):
            read_gds_json(truncated)


class TestLayoutArena:
    def test_warm_replay_bit_identical(self, placed_small, library):
        from repro.layout.arena import LayoutArena

        flat, reference = placed_small
        arena = LayoutArena()
        cold = arena.place(flat, library)
        warm = arena.place(flat, library)
        rn, rc = reference.cells.coord_arrays()
        for placement in (cold, warm):
            names, coords = placement.cells.coord_arrays()
            assert names == rn
            assert np.array_equal(coords, rc)
            assert placement.outline == reference.outline
        stats = arena.stats(flat, library)
        assert stats["place_scans"] == 1
        assert stats["place_replays"] == 1

    def test_route_reused_only_when_placement_matches(
        self, placed_small, library, process
    ):
        from repro.layout.arena import LayoutArena

        flat, _ = placed_small
        arena = LayoutArena()
        p1 = arena.place(flat, library)
        r1 = arena.route(flat, p1, library, process)
        p2 = arena.place(flat, library)
        r2 = arena.route(flat, p2, library, process)
        # Bit-identical replay -> the same estimate object, whose
        # memoized wire_load_fn keeps STA identity caches warm.
        assert r2 is r1
        assert r1.wire_load_fn() is r1.wire_load_fn()

        # A genuinely different placement must be re-estimated.
        import dataclasses

        nudged = dataclasses.replace(
            p2,
            cells=type(p2.cells)(
                p2.cells.coord_arrays()[0],
                p2.cells.coord_arrays()[1] + 0.1,
            ),
        )
        r3 = arena.route(flat, nudged, library, process)
        assert r3 is not r1
        assert arena.stats(flat, library)["route_computes"] == 2

    def test_params_change_invalidates_entry(self, placed_small, library):
        from repro.layout.arena import LayoutArena

        flat, _ = placed_small
        arena = LayoutArena()
        arena.place(flat, library, SDPParams())
        wider = arena.place(flat, library, SDPParams(aspect=2.4))
        # The second call must not replay the first params' floorplan.
        assert arena.stats(flat, library)["place_scans"] == 1
        assert wider is not None
