"""Activity propagation and power estimation."""

import pytest

from repro.power.activity import (
    GLITCH_DENSITY_CAP,
    NetActivity,
    propagate_activity,
)
from repro.power.estimator import (
    estimate_power,
    sparsity_input_stats,
)
from repro.rtl.ir import NetlistBuilder
from repro.tech.process import GENERIC_40NM


def _and_module():
    b = NetlistBuilder("andm")
    a = b.inputs("a")[0]
    c = b.inputs("c")[0]
    y = b.outputs("y")[0]
    n = b.and2(a, c)
    b.cell("BUF_X2", A=n, Y=y)
    return b.finish()


def _xor_module():
    b = NetlistBuilder("xorm")
    a = b.inputs("a")[0]
    c = b.inputs("c")[0]
    y = b.outputs("y")[0]
    n = b.xor2(a, c)
    b.cell("BUF_X2", A=n, Y=y)
    return b.finish()


class TestActivity:
    def test_and_probability(self, library):
        stats = propagate_activity(_and_module(), library)
        # p(a AND c) = 0.25 at p=0.5 inputs.
        y_nets = [n for n in stats if n.startswith("and")]
        assert stats[y_nets[0]].probability == pytest.approx(0.25)

    def test_xor_density_sums_inputs(self, library):
        m = _xor_module()
        stats = propagate_activity(
            m,
            library,
            input_stats={
                "a": NetActivity(0.5, 0.3),
                "c": NetActivity(0.5, 0.4),
            },
        )
        xor_net = [n for n in stats if n.startswith("xor")][0]
        # XOR is always sensitized: D(y) = D(a) + D(c).
        assert stats[xor_net].density == pytest.approx(0.7)

    def test_and_gate_attenuates_density(self, library):
        m = _and_module()
        stats = propagate_activity(m, library)
        net = [n for n in stats if n.startswith("and")][0]
        # Each input sensitized with p=0.5 -> D = 0.5*(D_a + D_c) = 0.5.
        assert stats[net].density == pytest.approx(0.5)

    def test_static_weight_kills_activity(self, library):
        m = _and_module()
        stats = propagate_activity(
            m,
            library,
            input_stats={
                "a": NetActivity(0.5, 0.5),
                "c": NetActivity(0.5, 0.0),
            },
        )
        net = [n for n in stats if n.startswith("and")][0]
        assert stats[net].density == pytest.approx(0.25)

    def test_glitch_cap_bounds_density(self, library):
        from repro.rtl.gen.addertree import generate_adder_tree

        tree, _ = generate_adder_tree(64, "rca")
        stats = propagate_activity(tree.flatten(), library)
        assert max(s.density for s in stats.values()) <= GLITCH_DENSITY_CAP


class TestPowerEstimate:
    def test_power_scales_with_frequency(self, library, process):
        m = _and_module()
        p1 = estimate_power(m, library, process, 100.0)
        p2 = estimate_power(m, library, process, 1000.0)
        assert p2.dynamic_mw == pytest.approx(10 * p1.dynamic_mw, rel=1e-6)
        assert p2.leakage_mw == pytest.approx(p1.leakage_mw)

    def test_power_scales_with_voltage_squared(self, library, process):
        m = _and_module()
        p_low = estimate_power(m, library, process, 500.0, vdd=0.7)
        p_nom = estimate_power(m, library, process, 500.0, vdd=0.9)
        ratio = p_low.dynamic_mw / p_nom.dynamic_mw
        assert ratio == pytest.approx((0.7 / 0.9) ** 2, rel=1e-6)

    def test_energy_per_cycle_frequency_invariant(self, library, process):
        m = _xor_module()
        e1 = estimate_power(m, library, process, 100.0).energy_per_cycle_pj
        e2 = estimate_power(m, library, process, 900.0).energy_per_cycle_pj
        assert e1 == pytest.approx(e2, rel=1e-9)

    def test_sparsity_lowers_macro_power(self, small_spec, library, process):
        from repro.arch import MacroArchitecture
        from repro.rtl.gen.macro import generate_macro

        mac, _ = generate_macro(small_spec, MacroArchitecture())
        flat = mac.flatten()
        dense = estimate_power(
            flat, library, process, 400.0,
            input_stats=sparsity_input_stats(flat),
        )
        sparse = estimate_power(
            flat, library, process, 400.0,
            input_stats=sparsity_input_stats(
                flat, input_one_probability=0.1, weight_one_probability=0.2
            ),
        )
        assert sparse.dynamic_mw < dense.dynamic_mw

    def test_report_describe(self, library, process):
        p = estimate_power(_and_module(), library, process, 500.0)
        assert "mW" in p.describe()
        assert p.total_mw == pytest.approx(p.dynamic_mw + p.leakage_mw)

    def test_clock_energy_counted_for_registers(self, library, process):
        b = NetlistBuilder("reg")
        d = b.inputs("d")[0]
        clk = b.inputs("clk")[0]
        q = b.outputs("q")[0]
        b.module.set_clocks([clk])
        s = b.dff(d, clk)
        b.cell("BUF_X2", A=s, Y=q)
        m = b.finish()
        # Even with a frozen data input the register burns clock power.
        p = estimate_power(
            m, library, process, 800.0,
            input_stats={"d": NetActivity(0.5, 0.0)},
        )
        assert p.internal_mw > 0.0
