"""Specification objects: formats, PPA weights, derived dimensions."""

import math

import pytest

from repro.errors import SpecificationError
from repro.spec import (
    BF16,
    FP4,
    FP8,
    INT1,
    INT4,
    INT8,
    DataFormat,
    MacroSpec,
    PPAWeights,
    parse_format,
    spec_from_strings,
)


class TestDataFormat:
    def test_int_formats(self):
        assert INT4.bits == 4 and not INT4.is_float
        assert INT4.serial_bits == 4
        assert INT4.storage_bits == 4

    def test_fp8_is_e4m3(self):
        assert FP8.exponent == 4 and FP8.mantissa == 3
        assert FP8.bias == 7
        assert FP8.serial_bits == 5  # sign + hidden + 3 mantissa

    def test_bf16_split(self):
        assert BF16.exponent == 8 and BF16.mantissa == 7
        assert BF16.bits == 16
        assert BF16.serial_bits == 9

    def test_alignment_window_clamped(self):
        # FP8: raw max shift 15, clamped at 2*(3+2)=10.
        assert FP8.alignment_window == 10
        # FP4: raw max shift 3 < clamp 6.
        assert FP4.alignment_window == 3
        assert INT8.alignment_window == 0

    def test_invalid_fp_split_rejected(self):
        with pytest.raises(SpecificationError):
            DataFormat(name="BAD", kind="fp", bits=8, exponent=5, mantissa=3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            DataFormat(name="X", kind="fixed", bits=8)

    def test_parse_format(self):
        assert parse_format("int8") is INT8
        assert parse_format("BF16") is BF16
        with pytest.raises(SpecificationError):
            parse_format("INT7")


class TestPPAWeights:
    def test_score_is_monotone_in_each_axis(self):
        w = PPAWeights()
        base = w.score(10.0, 1.0, 100.0)
        assert w.score(20.0, 1.0, 100.0) > base
        assert w.score(10.0, 2.0, 100.0) > base
        assert w.score(10.0, 1.0, 200.0) > base

    def test_weighting_shifts_preference(self):
        power_heavy = PPAWeights(power=5.0, performance=1.0, area=1.0)
        area_heavy = PPAWeights(power=1.0, performance=1.0, area=5.0)
        # Design A: low power, big; design B: high power, small.
        a = (1.0, 1.0, 1000.0)
        b = (10.0, 1.0, 100.0)
        assert power_heavy.score(*a) < power_heavy.score(*b)
        assert area_heavy.score(*b) < area_heavy.score(*a)

    def test_normalized_sums_to_one(self):
        n = PPAWeights(2.0, 3.0, 5.0).normalized()
        assert n.power + n.performance + n.area == pytest.approx(1.0)

    def test_rejects_all_zero(self):
        with pytest.raises(SpecificationError):
            PPAWeights(0.0, 0.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(SpecificationError):
            PPAWeights(-1.0, 1.0, 1.0)


class TestMacroSpec:
    def test_defaults_valid(self):
        spec = MacroSpec()
        assert spec.height == 64 and spec.width == 64 and spec.mcr == 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SpecificationError):
            MacroSpec(height=48)
        with pytest.raises(SpecificationError):
            MacroSpec(width=60)

    def test_mcr_range(self):
        with pytest.raises(SpecificationError):
            MacroSpec(mcr=0)
        with pytest.raises(SpecificationError):
            MacroSpec(mcr=16)

    def test_derived_widths_64(self):
        spec = MacroSpec(
            height=64, width=64, input_formats=(INT8,), weight_formats=(INT8,)
        )
        assert spec.tree_sum_width == 7  # floor(log2 64)+1
        assert spec.input_width == 8
        assert spec.accumulator_width == 15
        assert spec.max_weight_bits == 8
        assert spec.ofu_stages == 3

    def test_fp_inputs_set_serial_width(self):
        spec = MacroSpec(
            height=64,
            width=64,
            input_formats=(INT4, FP8),
            weight_formats=(INT4,),
        )
        assert spec.input_width == 5  # FP8 significand
        assert spec.needs_fp

    def test_int1_weights_ride_int2_path(self):
        spec = MacroSpec(
            height=8, width=8, input_formats=(INT1,), weight_formats=(INT1,)
        )
        assert spec.max_weight_bits == 2

    def test_sram_rows_with_mcr(self):
        spec = MacroSpec(height=64, width=64, mcr=4)
        assert spec.sram_rows == 256
        assert spec.storage_bits == 256 * 64

    def test_mac_period(self):
        spec = MacroSpec(mac_frequency_mhz=800.0)
        assert spec.mac_period_ns == pytest.approx(1.25)

    def test_replace_creates_new(self):
        spec = MacroSpec()
        other = spec.replace(height=128)
        assert other.height == 128 and spec.height == 64

    def test_describe_mentions_formats(self):
        s = MacroSpec(input_formats=(INT4, FP8), weight_formats=(INT4,))
        assert "FP8" in s.describe() and "INT4" in s.describe()

    def test_vdd_window(self):
        with pytest.raises(SpecificationError):
            MacroSpec(vdd=0.3)

    def test_spec_from_strings(self):
        spec = spec_from_strings(32, 32, 2, ["INT4", "FP8"])
        assert spec.height == 32
        assert FP8 in spec.input_formats
