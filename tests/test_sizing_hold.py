"""Gate sizing pass and hold-time analysis."""

import pytest

from repro.rtl.ir import NetlistBuilder
from repro.sim.gatesim import GateSimulator
from repro.sta.analysis import analyze, analyze_hold, minimum_period_ns
from repro.synth.sizing import UPSIZE, size_for_timing


def _loaded_chain(n_stages=6, fanout=24):
    """Inverter chain where each stage drives a heavy fanout — prime
    territory for upsizing."""
    b = NetlistBuilder("loaded")
    a = b.inputs("a")[0]
    y = b.outputs("y")[0]
    node = a
    for s in range(n_stages):
        nxt = b.inv(node)
        for f in range(fanout):
            b.cell("INV_X1", hint="load", A=nxt, Y=b.net("sink"))
        node = nxt
    b.cell("BUF_X2", A=node, Y=y)
    return b.finish()


class TestSizing:
    def test_sizing_improves_loaded_path(self, library):
        m = _loaded_chain()
        base = minimum_period_ns(m, library)
        sized, report, moves = size_for_timing(
            m, library, clock_period_ns=base * 0.6
        )
        assert moves > 0
        assert report.critical_path_ns < base

    def test_sizing_stops_when_met(self, library):
        m = _loaded_chain(n_stages=3, fanout=4)
        need = minimum_period_ns(m, library) * 2.0
        sized, report, moves = size_for_timing(m, library, need)
        assert report.met
        assert moves == 0  # already met, no churn

    def test_sizing_preserves_function(self, library):
        m = _loaded_chain(n_stages=5, fanout=8)
        base = minimum_period_ns(m, library)
        sized, _, moves = size_for_timing(m, library, base * 0.5)
        assert moves > 0
        s1, s2 = GateSimulator(m, library), GateSimulator(sized, library)
        for a in (0, 1):
            s1.set_input("a", a)
            s2.set_input("a", a)
            s1.evaluate()
            s2.evaluate()
            assert s1.net("y") == s2.net("y")

    def test_upsize_map_targets_exist(self, library):
        for small, big in UPSIZE.items():
            assert small in library and big in library
            assert (
                library.cell(big).area_um2 > library.cell(small).area_um2
            )

    def test_sizing_on_column_slice(self, library, small_spec, default_arch):
        from repro.rtl.gen.macro import generate_column_slice

        flat = generate_column_slice(small_spec, default_arch).flatten()
        base = minimum_period_ns(flat, library)
        _, report, moves = size_for_timing(flat, library, base * 0.8)
        # Either the path has sizable cells (improvement) or it is
        # FA-bound (no moves); both are legal, regression guards the API.
        assert report.critical_path_ns <= base + 1e-6


class TestHold:
    def test_registered_pipeline_hold_clean(self, library):
        b = NetlistBuilder("pipe")
        d = b.inputs("d")[0]
        clk = b.inputs("clk")[0]
        q = b.outputs("q")[0]
        b.module.set_clocks([clk])
        s1 = b.dff(d, clk)
        inv = b.inv(s1)
        s2 = b.dff(inv, clk)
        b.cell("BUF_X2", A=s2, Y=q)
        report = analyze_hold(b.finish(), library)
        # clk-to-q (85 ps) + inverter delay >> 10 ps hold.
        assert report.met
        # bound by the external input-delay assumption (50 ps)
        assert report.worst_slack_ns >= 0.03

    def test_hold_on_macro(self, library, small_spec, default_arch):
        from repro.rtl.gen.macro import generate_macro

        mac, _ = generate_macro(small_spec, default_arch)
        report = analyze_hold(mac.flatten(), library)
        assert report.met, report

    def test_hold_report_fields(self, library, small_spec, default_arch):
        from repro.rtl.gen.macro import generate_macro

        mac, _ = generate_macro(small_spec, default_arch)
        report = analyze_hold(mac.flatten(), library)
        assert report.endpoint  # names a real data pin net
