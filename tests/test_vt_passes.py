"""Vt-swap / drive-resize repair passes: mutation catching and recovery.

Mirrors the ``tests/test_verify.py`` style: injected faults — a Vt swap
that would change a cell's logic function, a downsize that breaks the
worst-corner period bound, a stale leakage/timing table — must be
loudly rejected, never silently folded into the netlist.  Property
style tests draw netlist shapes from named seeds; every assertion
message carries the seed so a failure reproduces from the log alone.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import LibraryError, SynthesisError, TimingError
from repro.rtl.ir import NetlistBuilder
from repro.rtl.gen.addertree import generate_adder_tree
from repro.sta import instance_slacks, minimum_period_ns, net_slacks
from repro.synth import (
    check_vt_library,
    recover_leakage,
    resize_drive,
    swap_vt,
    upsize_critical,
)
from repro.tech.stdcells import (
    DRIVE_LADDER,
    VT_ORDER,
    StdCellLibrary,
    default_library,
    parse_variant_name,
)

BASE_SEED = 0x5157


def _flat_tree(n_inputs: int):
    module, _ = generate_adder_tree(n_inputs)
    return module.flatten()


def _mutant_library(**replacements) -> StdCellLibrary:
    """A copy of the default library with named cells swapped out."""
    cells = {c.name: c for c in default_library()}
    cells.update(replacements)
    return StdCellLibrary(cells)


def _leakage_nw(module, library) -> float:
    return sum(
        library.cell(inst.cell_name).leakage_nw for inst in module.instances
    )


class TestSwapVt:
    @pytest.mark.parametrize("trial", range(3))
    def test_round_trip_restores_netlist(self, library, trial):
        seed = BASE_SEED + 11 * trial
        rng = np.random.default_rng(seed)
        flat = _flat_tree(int(rng.choice([8, 12, 16])))
        before = [inst.cell_name for inst in flat.instances]
        swapped = swap_vt(flat, library, "hvt")
        assert swapped > 0, f"no cells re-flavored (seed={seed})"
        for inst in flat.instances:
            parsed = parse_variant_name(inst.cell_name)
            if parsed is not None:
                assert parsed[1] == "hvt", (
                    f"{inst.name} kept {inst.cell_name} (seed={seed})"
                )
        assert swap_vt(flat, library, "svt") == swapped, f"seed={seed}"
        after = [inst.cell_name for inst in flat.instances]
        assert after == before, f"round trip not identity (seed={seed})"

    def test_hvt_slows_and_saves_leakage(self, library):
        flat = _flat_tree(8)
        period = minimum_period_ns(flat, library)
        leak = _leakage_nw(flat, library)
        swap_vt(flat, library, "hvt")
        assert minimum_period_ns(flat, library) > period
        assert _leakage_nw(flat, library) < leak

    def test_unknown_flavor_rejected(self, library):
        flat = _flat_tree(8)
        with pytest.raises(LibraryError, match="unknown vt flavor"):
            swap_vt(flat, library, "xvt")

    def test_function_breaking_swap_rejected(self):
        """Mutation: a library whose hvt NAND2 actually computes NOR2
        must be rejected at swap time, not miscompiled."""
        lib = default_library()
        nor = lib.cell("NOR2_X1")
        broken = dataclasses.replace(
            lib.cell("NAND2_HVT_X1"),
            function=nor.function,
            pin_functions=dict(nor.pin_functions),
        )
        mutant = _mutant_library(NAND2_HVT_X1=broken)

        b = NetlistBuilder("one_nand")
        a, c = b.inputs("a")[0], b.inputs("c")[0]
        y = b.outputs("y")[0]
        b.cell("NAND2_X1", A=a, B=c, Y=y)
        m = b.finish()
        before = [inst.cell_name for inst in m.instances]
        with pytest.raises(
            SynthesisError, match="changes the cell's logic function"
        ):
            swap_vt(m, mutant, "hvt")
        assert [i.cell_name for i in m.instances] == before


class TestResizeDrive:
    def _x2_chain(self, n: int):
        b = NetlistBuilder("chain")
        node = b.inputs("a")[0]
        y = b.outputs("y")[0]
        for _ in range(n - 1):
            nxt = b.net("n")
            b.cell("INV_X2", A=node, Y=nxt)
            node = nxt
        b.cell("INV_X2", A=node, Y=y)
        return b.finish()

    def test_downsize_walks_the_ladder(self, library):
        m = self._x2_chain(6)
        moved = resize_drive(m, library, step=-1)
        assert moved == 6
        assert all(
            parse_variant_name(i.cell_name)[2] == 1 for i in m.instances
        )
        # Already at the ladder floor: clamped, nothing to do.
        assert resize_drive(m, library, step=-1) == 0

    def test_violating_downsize_rejected_and_reverted(self, library):
        """Mutation: a downsize that pushes the wire-loaded minimum
        period past the bound must raise and leave the module intact."""
        wire = 8.0
        m = self._x2_chain(8)
        bound = minimum_period_ns(m, library, wire_load=lambda n: wire)
        before = [inst.cell_name for inst in m.instances]
        with pytest.raises(TimingError, match="reverted"):
            resize_drive(
                m, library, step=-1,
                max_period_ns=bound, wire_load=lambda n: wire,
            )
        assert [i.cell_name for i in m.instances] == before
        assert minimum_period_ns(
            m, library, wire_load=lambda n: wire
        ) == pytest.approx(bound)

    def test_bounded_upsize_accepted(self, library):
        m = self._x2_chain(8)
        bound = minimum_period_ns(m, library, wire_load=lambda n: 8.0)
        moved = resize_drive(
            m, library, step=1,
            max_period_ns=bound, wire_load=lambda n: 8.0,
        )
        assert moved == 8
        assert minimum_period_ns(m, library, wire_load=lambda n: 8.0) < bound

    def test_upsize_critical_fixes_violations(self, library):
        m = self._x2_chain(8)
        wire = 12.0
        period = minimum_period_ns(m, library, wire_load=lambda n: wire)
        moved = upsize_critical(
            m, library, clock_period_ns=period * 0.9,
            wire_load=lambda n: wire,
        )
        assert moved > 0
        assert minimum_period_ns(
            m, library, wire_load=lambda n: wire
        ) < period


class TestRecoverLeakage:
    @pytest.mark.parametrize("trial", range(3))
    def test_demotes_slack_without_breaking_timing(self, library, trial):
        seed = BASE_SEED + 101 * trial
        rng = np.random.default_rng(seed)
        flat = _flat_tree(int(rng.choice([8, 12, 16])))
        period = minimum_period_ns(flat, library)
        clock = period * float(rng.uniform(1.5, 2.5))
        leak = _leakage_nw(flat, library)
        demoted = recover_leakage(flat, library, clock_period_ns=clock)
        assert demoted > 0, f"nothing recovered (seed={seed})"
        assert _leakage_nw(flat, library) < leak, f"seed={seed}"
        assert minimum_period_ns(flat, library) <= clock, (
            f"recovery broke the clock budget (seed={seed})"
        )

    def test_no_slack_no_swaps(self, library):
        flat = _flat_tree(8)
        period = minimum_period_ns(flat, library)
        # margin eats the entire budget: every candidate is filtered.
        assert recover_leakage(
            flat, library, clock_period_ns=period, margin_ns=period
        ) == 0

    def test_unknown_target_flavor_rejected(self, library):
        flat = _flat_tree(8)
        with pytest.raises(LibraryError, match="unknown vt flavor"):
            recover_leakage(
                flat, library, clock_period_ns=10.0, target_vt="none"
            )


class TestSlacks:
    def test_min_slack_matches_wns(self, library):
        flat = _flat_tree(12)
        clock = 4.0
        period = minimum_period_ns(flat, library)
        inst = instance_slacks(flat, library, clock)
        nets = net_slacks(flat, library, clock)
        finite = [s for s in inst.values() if s != float("inf")]
        assert min(finite) == pytest.approx(clock - period)
        assert min(nets.values()) == pytest.approx(clock - period)


class TestCheckVtLibrary:
    def test_default_library_is_consistent(self, library):
        # One grid point per laddered (base, drive) pair with >= 2
        # flavors present; the default grid holds 68 of them.
        assert check_vt_library(library) == 68

    def test_vt_order_covers_all_flavors(self):
        assert set(VT_ORDER) == {"hvt", "svt", "lvt", "ulvt"}
        assert len(DRIVE_LADDER) == 6

    def test_stale_leakage_table_rejected(self):
        """Mutation: an hvt cell whose leakage was never re-derived
        (equal to its svt sibling) must fail the ordering check."""
        lib = default_library()
        stale = dataclasses.replace(
            lib.cell("INV_HVT_X1"),
            leakage_nw=lib.cell("INV_X1").leakage_nw,
        )
        with pytest.raises(LibraryError, match="stale leakage table"):
            check_vt_library(_mutant_library(INV_HVT_X1=stale))

    def test_stale_timing_table_rejected(self):
        """Mutation: an hvt cell that kept its svt delays (delay not
        re-scaled) must fail the ordering check."""
        lib = default_library()
        stale = dataclasses.replace(
            lib.cell("INV_HVT_X1"),
            arcs=lib.cell("INV_X1").arcs,
        )
        with pytest.raises(LibraryError, match="stale timing table"):
            check_vt_library(_mutant_library(INV_HVT_X1=stale))
