"""Vectorized analysis kernels against their scalar references.

The SCL-build hot path (activity propagation, STA arrival passes, power
summation, netlist compilation) was rewritten over integer/numpy tables
in :mod:`repro.rtl.netview`.  These tests pin the fast paths to the
retained reference implementations on representative subcircuits —
including registered and memory-bearing fabrics — so any drift in the
kernels is caught at unit granularity, not as a mysterious benchmark
delta.
"""

from __future__ import annotations

import pytest

from repro.power.activity import (
    NetActivity,
    _cell_output_stats,
    _cell_output_stats_reference,
    propagate_activity,
    propagate_activity_reference,
)
from repro.rtl.gen.addertree import generate_adder_tree
from repro.rtl.gen.drivers import generate_wl_driver
from repro.rtl.gen.multiplier import generate_mult_mux
from repro.rtl.gen.ofu import OFUConfig, generate_fuse_stage, generate_ofu
from repro.rtl.gen.shiftadder import generate_shift_adder
from repro.rtl.netview import net_view
from repro.scl.builder import _char_input_stats
from repro.sta.analysis import analyze, analyze_graph, minimum_period_ns
from repro.sta.graph import build_timing_graph, net_capacitance


def _modules():
    mods = []
    for style, fa in (("rca", 0), ("cmp42", 0), ("mixed", 2)):
        mod, _ = generate_adder_tree(16, style, fa, True)
        mods.append(mod)
    mods.append(generate_mult_mux(2, "tg_nor"))
    mods.append(generate_shift_adder(5, 4))
    mods.append(generate_ofu(OFUConfig(columns=4, input_width=12)))
    mods.append(generate_fuse_stage(10, 2))
    mods.append(generate_wl_driver(4, 12.0, 4))
    return [m if m.is_flat else m.flatten() for m in mods]


class TestActivityEquivalence:
    def test_cell_stats_match_reference(self, library):
        for cell in library:
            if cell.function is None:
                continue
            pins = list(cell.input_caps_ff)
            probs = {p: 0.1 + 0.15 * i for i, p in enumerate(pins)}
            dens = {p: 0.05 + 0.2 * i for i, p in enumerate(pins)}
            fast = _cell_output_stats(cell, probs, dens)
            ref = _cell_output_stats_reference(cell, probs, dens)
            assert set(fast) == set(ref)
            for out in ref:
                assert fast[out].probability == pytest.approx(
                    ref[out].probability, rel=1e-12, abs=1e-15
                )
                assert fast[out].density == pytest.approx(
                    ref[out].density, rel=1e-12, abs=1e-15
                )

    def test_cell_stats_degenerate_probabilities(self, library):
        """p in {0, 1} hits the reference's zero-weight skip rules."""
        for name in ("FA_X1", "CMP42_X1", "MUX2_X1", "XOR2_X1"):
            cell = library.cell(name)
            pins = list(cell.input_caps_ff)
            probs = {p: float(i % 2) for i, p in enumerate(pins)}
            dens = {p: 0.4 for p in pins}
            fast = _cell_output_stats(cell, probs, dens)
            ref = _cell_output_stats_reference(cell, probs, dens)
            for out in ref:
                assert fast[out].probability == pytest.approx(
                    ref[out].probability, rel=1e-12, abs=1e-15
                )
                assert fast[out].density == pytest.approx(
                    ref[out].density, rel=1e-12, abs=1e-15
                )

    def test_propagation_matches_reference(self, library):
        for flat in _modules():
            stats = _char_input_stats(flat)
            fast = propagate_activity(flat, library, stats)
            ref = propagate_activity_reference(flat, library, stats)
            assert set(fast) == set(ref), flat.name
            for net, act in ref.items():
                got = fast[net]
                assert got.probability == pytest.approx(
                    act.probability, rel=1e-9, abs=1e-12
                ), (flat.name, net)
                assert got.density == pytest.approx(
                    act.density, rel=1e-9, abs=1e-12
                ), (flat.name, net)

    def test_forced_internal_and_unknown_nets_pass_through(self, library):
        flat = _modules()[1]
        internal = next(
            n for n in flat.nets if n not in flat.ports
        )
        forced = {
            internal: NetActivity(0.9, 0.1),
            "not_a_net_at_all": NetActivity(0.2, 0.3),
        }
        fast = propagate_activity(flat, library, forced)
        ref = propagate_activity_reference(flat, library, forced)
        assert fast["not_a_net_at_all"] == ref["not_a_net_at_all"]
        assert set(fast) == set(ref)


class TestStaEquivalence:
    def test_reports_match_scalar_graph(self, library):
        for flat in _modules():
            graph = build_timing_graph(flat, library)
            ref = analyze_graph(graph, 5.0)
            fast = analyze(flat, library, 5.0)
            assert fast.critical_path_ns == pytest.approx(
                ref.critical_path_ns, rel=1e-12
            ), flat.name
            assert fast.wns_ns == pytest.approx(ref.wns_ns, rel=1e-12)
            assert fast.endpoint == ref.endpoint
            assert fast.endpoint_kind == ref.endpoint_kind
            assert set(fast.endpoint_slacks) == set(ref.endpoint_slacks)
            for net, slack in ref.endpoint_slacks.items():
                assert fast.endpoint_slacks[net] == pytest.approx(
                    slack, rel=1e-9, abs=1e-12
                )
            assert len(fast.path) == len(ref.path)

    def test_min_period_matches_scalar(self, library):
        for flat in _modules():
            graph = build_timing_graph(flat, library)
            ref = 1e9 - analyze_graph(graph, 1e9).wns_ns
            assert minimum_period_ns(flat, library) == pytest.approx(
                ref, rel=1e-12
            ), flat.name

    def test_derate_and_wire_load_paths(self, library):
        flat = _modules()[2]
        wl = lambda net: 0.1 * (hash(net) % 7)  # noqa: E731
        graph = build_timing_graph(flat, library, wire_load=wl)
        ref = analyze_graph(graph, 4.0, derate=1.18)
        fast = analyze(flat, library, 4.0, wire_load=wl, derate=1.18)
        assert fast.critical_path_ns == pytest.approx(
            ref.critical_path_ns, rel=1e-12
        )
        assert fast.wns_ns == pytest.approx(ref.wns_ns, rel=1e-12)


class TestLoadsEquivalence:
    def test_net_capacitance_matches_reference(self, library):
        for flat in _modules():
            fast = net_capacitance(flat, library)
            # Scalar reference, as net_capacitance was originally written.
            loads = {net: 0.0 for net in flat.nets}
            sinks = {net: 0 for net in flat.nets}
            for inst in flat.instances:
                cell = library.cell(inst.cell_name)
                for pin, cap in cell.input_caps_ff.items():
                    net = inst.conn.get(pin)
                    if net is None:
                        continue
                    loads[net] += cap
                    sinks[net] += 1
            for net in loads:
                loads[net] += 0.35 * sinks[net]
            assert set(fast) == set(loads)
            for net, value in loads.items():
                assert fast[net] == pytest.approx(value, rel=1e-12, abs=1e-12)


class TestPowerEquivalence:
    def test_estimate_power_matches_scalar_formulas(self, library, process):
        from repro.power.estimator import estimate_power

        for flat in _modules():
            stats = _char_input_stats(flat)
            report = estimate_power(
                flat, library, process, 1000.0, input_stats=stats
            )
            activity = propagate_activity_reference(flat, library, stats)
            loads = net_capacitance(flat, library)
            v = process.vdd_nominal
            switching = sum(
                0.5 * cap * v * v * activity[net].density
                for net, cap in loads.items()
                if net in activity
            )
            internal = 0.0
            memory = 0.0
            leak = 0.0
            for inst in flat.instances:
                cell = library.cell(inst.cell_name)
                leak += cell.leakage_nw
                if cell.is_memory:
                    wl_net = inst.conn.get("WL")
                    act = activity.get(wl_net) if wl_net else None
                    reads = act.density if act else 0.0
                    memory += cell.internal_energy_fj.get("RD", 0.0) * reads
                    continue
                for pin, e in cell.internal_energy_fj.items():
                    net = inst.conn.get(pin)
                    if net is not None and net in activity:
                        internal += e * activity[net].density
                if cell.is_sequential:
                    ck = cell.input_caps_ff.get(cell.clk_pin, 0.0)
                    internal += 0.5 * ck * v * v * 2.0
            to_mw = 1000.0 * 1e-6
            assert report.switching_mw == pytest.approx(
                switching * to_mw, rel=1e-9
            ), flat.name
            assert report.internal_mw == pytest.approx(
                internal * to_mw, rel=1e-9
            )
            assert report.memory_mw == pytest.approx(
                memory * to_mw, rel=1e-9, abs=1e-15
            )
            assert report.leakage_mw == pytest.approx(
                leak * 1e-6, rel=1e-12
            )


class TestNetViewInvalidation:
    def test_view_tracks_module_mutation(self, library):
        flat = _modules()[3]
        v1 = net_view(flat, library)
        assert net_view(flat, library) is v1  # cached
        flat.add_net("late_net")
        v2 = net_view(flat, library)
        assert v2 is not v1
        assert "late_net" in v2.net_id

    def test_flatten_matches_template_expansion(self, library):
        """A module with repeated submodules (template path) flattens to
        the same netlist as naive recursion would: every leaf reachable,
        names hierarchical, nets spliced through ports."""
        from repro.rtl.ir import Module, NetlistBuilder

        child = NetlistBuilder("leafpair")
        a = child.inputs("a")[0]
        y = child.outputs("y")[0]
        child.cell("INV_X1", A=a, Y=child.net("mid"))
        child.cell("BUF_X2", A=a, Y=y)
        cmod = child.finish()

        top = NetlistBuilder("top")
        x = top.inputs("x")[0]
        o0 = top.outputs("o0")[0]
        o1 = top.outputs("o1")[0]
        top.submodule(cmod, hint="u0", a=x, y=o0)
        top.submodule(cmod, hint="u1", a=x, y=o1)  # 2nd use: template
        flat = top.finish().flatten()
        assert flat.is_flat
        assert len(flat.instances) == 4
        drivers = flat.net_drivers(library)
        assert o0 in drivers and o1 in drivers
        names = {i.name for i in flat.instances}
        assert len(names) == 4
        flat.validate(library)


class TestFlattenTemplateStaleness:
    def _grandchild_tree(self):
        from repro.rtl.ir import NetlistBuilder

        g = NetlistBuilder("grand")
        a = g.inputs("a")[0]
        y = g.outputs("y")[0]
        g.cell("INV_X1", A=a, Y=y)
        gmod = g.finish()

        c = NetlistBuilder("child")
        ca = c.inputs("a")[0]
        cy = c.outputs("y")[0]
        c.submodule(gmod, hint="g0", a=ca, y=cy)
        cmod = c.finish()

        p = NetlistBuilder("parent")
        x = p.inputs("x")[0]
        o0 = p.outputs("o0")[0]
        o1 = p.outputs("o1")[0]
        p.submodule(cmod, hint="u0", a=x, y=o0)
        p.submodule(cmod, hint="u1", a=x, y=o1)  # reuse -> template path
        return p.finish(), gmod

    def test_nested_mutation_invalidates_template(self):
        """Mutating a grandchild after a flatten must show up in the
        next flatten — the template cache revalidates recursively."""
        parent, grand = self._grandchild_tree()
        first = parent.flatten()
        assert len(first.instances) == 2
        # Grow the grandchild: the parent's revision does not change,
        # only the grandchild's does.
        mid = grand.add_net("mid2")
        grand.add_instance("inv2", "INV_X1", {"A": mid, "Y": grand.add_net("y2")})
        second = parent.flatten()
        assert len(second.instances) == 4, (
            "stale leaf template: grandchild mutation was dropped"
        )


class TestDuplicateInstanceGuard:
    def test_builder_and_manual_names_share_namespace(self):
        from repro.errors import SynthesisError
        from repro.rtl.ir import NetlistBuilder

        b = NetlistBuilder("dup")
        a = b.inputs("a")[0]
        b.cell("INV_X1", hint="busy_reg", A=a, Y=b.net("y"))
        # b.cell produced "busy_reg_<n>"; colliding manual name raises.
        taken = b.module.instances[-1].name
        with pytest.raises(SynthesisError):
            b.module.add_instance(taken, "INV_X1", {"A": a})
        # And the unchecked fast path guards too.
        with pytest.raises(SynthesisError):
            b.module._add_instance_unchecked(taken, "INV_X1", {"A": a})


class TestSearchRepairFallback:
    def test_cross_path_fallback_survives_estimate_errors(self, scl):
        """Satellite fix: an invalid candidate arch coming out of the
        cross-path fallback must be skipped (like the primary loop
        does), not crash the whole search."""
        from repro.arch import MacroArchitecture
        from repro.search.algorithm import MSOSearcher
        from repro.search.estimate import estimate_macro
        from repro.spec import INT4, MacroSpec

        spec = MacroSpec(
            height=64,
            width=64,
            mcr=2,
            input_formats=(INT4,),
            weight_formats=(INT4,),
            mac_frequency_mhz=3000.0,  # unreachable: repair must escalate
        )
        est = estimate_macro(spec, MacroArchitecture(), scl)
        assert not est.met
        assert not est.critical_segment.name.startswith("ofu")

        def bad_move(spec_, arch):
            return "not-an-architecture"  # _estimate will raise on this

        # Empty MAC-fix family forces the cross-path fallback, whose
        # only move yields a poisoned candidate.
        searcher = MSOSearcher(
            scl,
            mac_fixes=(),
            ofu_fixes=(("bad", bad_move),),
            merge_moves=(),
            tuning_moves=(),
        )
        trace = []
        out = searcher._repair_timing(
            spec, est, "seed", lambda *args: trace.append(args)
        )
        assert out is None  # infeasible, but no exception escaped
        assert any(entry[1] == "infeasible" for entry in trace)
