"""Synthesis optimization passes: equivalence and effectiveness."""

import random

import pytest

from repro.rtl.ir import NetlistBuilder
from repro.sim.gatesim import GateSimulator
from repro.synth.optimize import (
    buffer_high_fanout,
    optimize,
    propagate_constants,
    sweep_dead_logic,
)


def _module_with_constants():
    """y = a AND (0 OR 1) = a; plus dead logic."""
    b = NetlistBuilder("cm")
    a = b.inputs("a")[0]
    y = b.outputs("y")[0]
    zero = b.const0()
    one = b.const1()
    const_or = b.or2(zero, one)          # constant 1
    useful = b.and2(a, const_or)         # == a
    dead = b.xor2(a, one)                # drives nothing
    del dead
    b.cell("BUF_X2", A=useful, Y=y)
    return b.finish()


def test_constant_folding_removes_const_gates(library):
    m = _module_with_constants()
    folded, n = propagate_constants(m, library)
    assert n >= 1
    folded.validate(library)
    names = {i.cell_name for i in folded.instances}
    assert "OR2_X1" not in names


def test_dead_sweep_removes_unloaded_logic(library):
    m = _module_with_constants()
    swept, n = sweep_dead_logic(m, library)
    assert n >= 1
    swept.validate(library)
    assert all(i.cell_name != "XOR2_X1" for i in swept.instances)


def test_optimize_preserves_function(library):
    m = _module_with_constants()
    opt, stats = optimize(m, library)
    assert stats["dead_gates_removed"] >= 1
    s_ref = GateSimulator(m, library)
    s_opt = GateSimulator(opt, library)
    for a in (0, 1):
        s_ref.set_input("a", a)
        s_opt.set_input("a", a)
        s_ref.evaluate()
        s_opt.evaluate()
        assert s_ref.net("y") == s_opt.net("y") == a


def test_fanout_buffering_splits_heavy_nets(library):
    b = NetlistBuilder("fan")
    a = b.inputs("a")[0]
    outs = b.outputs("y", 100)
    for i in range(100):
        b.cell("BUF_X2", A=a, Y=outs[i])
    m = b.finish()
    buffered, added = buffer_high_fanout(m, library, limit=30)
    assert added >= 3
    buffered.validate(library)
    loads = buffered.net_loads(library)
    assert len(loads.get("a", [])) <= 30 + 1  # repeaters only


def test_fanout_buffering_preserves_function(library):
    b = NetlistBuilder("fan2")
    a = b.inputs("a")[0]
    outs = b.outputs("y", 64)
    for i in range(64):
        b.cell("INV_X1", A=a, Y=outs[i])
    m = b.finish()
    buffered, _ = buffer_high_fanout(m, library, limit=16)
    s1, s2 = GateSimulator(m, library), GateSimulator(buffered, library)
    for a_val in (0, 1):
        s1.set_input("a", a_val)
        s2.set_input("a", a_val)
        s1.evaluate()
        s2.evaluate()
        for i in range(64):
            assert s1.net(f"y[{i}]") == s2.net(f"y[{i}]")


def test_sequential_logic_never_swept(library, small_spec, default_arch):
    from repro.rtl.gen.macro import generate_macro

    mac, _ = generate_macro(small_spec, default_arch)
    flat = mac.flatten()
    regs_before = sum(
        1 for i in flat.instances if library.cell(i.cell_name).is_sequential
    )
    opt, _ = optimize(flat, library)
    regs_after = sum(
        1 for i in opt.instances if library.cell(i.cell_name).is_sequential
    )
    assert regs_after == regs_before


def test_macro_equivalence_after_optimize(library, small_spec, default_arch):
    """Random-vector equivalence on the full small macro."""
    from repro.rtl.gen.macro import generate_macro

    mac, shape = generate_macro(small_spec, default_arch)
    flat = mac.flatten()
    opt, _ = optimize(flat, library)
    s1, s2 = GateSimulator(flat, library), GateSimulator(opt, library)
    rng = random.Random(11)
    ports = [p for p in flat.input_ports if p != "clk"]
    for _ in range(4):
        for p in ports:
            v = rng.randint(0, 1)
            s1.set_input(p, v)
            s2.set_input(p, v)
        for _ in range(2):
            s1.clock()
            s2.clock()
        w = shape.ofu_output_width * shape.n_groups
        assert [s1.net(f"y[{i}]") for i in range(w)] == [
            s2.net(f"y[{i}]") for i in range(w)
        ]
