"""RTL IR: module construction, hierarchy flattening, validation."""

import pytest

from repro.errors import SynthesisError
from repro.rtl.ir import Module, NetlistBuilder, bus
from repro.rtl.verilog import emit_verilog


def test_bus_names_lsb_first():
    assert bus("d", 3) == ["d[0]", "d[1]", "d[2]"]
    assert bus("d", 3, msb_first=True) == ["d[2]", "d[1]", "d[0]"]


def test_builder_basic_gates(library):
    b = NetlistBuilder("top")
    a, c = b.inputs("a")[0], b.inputs("c")[0]
    y = b.outputs("y")[0]
    n = b.and2(a, c)
    b.cell("BUF_X2", A=n, Y=y)
    m = b.finish()
    m.validate(library)
    assert m.leaf_count() == 2
    assert m.input_ports == ("a", "c")
    assert m.output_ports == ("y",)


def test_duplicate_instance_rejected():
    m = Module("t")
    m.add_instance("i1", "INV_X1", {"A": "a", "Y": "y"})
    with pytest.raises(SynthesisError):
        m.add_instance("i1", "INV_X1", {"A": "a", "Y": "z"})


def test_port_direction_conflict_rejected():
    m = Module("t")
    m.add_port("p", "input")
    with pytest.raises(SynthesisError):
        m.add_port("p", "output")
    m.add_port("p", "input")  # re-declaring same direction is fine


def test_multiple_drivers_detected(library):
    m = Module("t")
    m.add_port("y", "output")
    m.add_instance("i1", "TIE0", {"Y": "y"})
    m.add_instance("i2", "TIE1", {"Y": "y"})
    with pytest.raises(SynthesisError):
        m.net_drivers(library)


def test_undriven_output_detected(library):
    m = Module("t")
    m.add_port("y", "output")
    with pytest.raises(SynthesisError):
        m.validate(library)


def test_bad_pin_detected(library):
    m = Module("t")
    m.add_port("y", "output")
    m.add_instance("i1", "INV_X1", {"A": "a", "Z": "y"})
    with pytest.raises(SynthesisError):
        m.validate(library)


def test_flatten_splices_ports(library):
    inner = Module("inner")
    inner.add_port("a", "input")
    inner.add_port("y", "output")
    inner.add_instance("inv", "INV_X1", {"A": "a", "Y": "y"})

    outer = Module("outer")
    outer.add_port("x", "input")
    outer.add_port("z", "output")
    outer.add_instance("u0", inner, {"a": "x", "y": "mid"})
    outer.add_instance("u1", inner, {"a": "mid", "y": "z"})

    flat = outer.flatten()
    flat.validate(library)
    assert flat.leaf_count() == 2
    names = [i.name for i in flat.instances]
    assert "u0/inv" in names and "u1/inv" in names
    # The two inverters chain through the outer 'mid' net.
    drivers = flat.net_drivers(library)
    assert "mid" in drivers


def test_flatten_prefixes_internal_nets(library):
    inner = Module("inner")
    inner.add_port("a", "input")
    inner.add_port("y", "output")
    inner.add_net("internal")
    inner.add_instance("g1", "INV_X1", {"A": "a", "Y": "internal"})
    inner.add_instance("g2", "INV_X1", {"A": "internal", "Y": "y"})

    outer = Module("outer")
    outer.add_port("p", "input")
    outer.add_port("q", "output")
    outer.add_instance("sub", inner, {"a": "p", "y": "q"})
    flat = outer.flatten()
    assert "sub/internal" in flat.nets


def test_nested_hierarchy_flatten(library):
    leaf = Module("leaf")
    leaf.add_port("a", "input")
    leaf.add_port("y", "output")
    leaf.add_instance("g", "BUF_X2", {"A": "a", "Y": "y"})

    mid = Module("mid")
    mid.add_port("a", "input")
    mid.add_port("y", "output")
    mid.add_instance("l", leaf, {"a": "a", "y": "y"})

    top = Module("top")
    top.add_port("i", "input")
    top.add_port("o", "output")
    top.add_instance("m", mid, {"a": "i", "y": "o"})
    flat = top.flatten()
    assert [i.name for i in flat.instances] == ["m/l/g"]
    assert flat.instances[0].conn == {"A": "i", "Y": "o"}


def test_ripple_adder_widths(library):
    b = NetlistBuilder("add")
    a = b.inputs("a", 4)
    c = b.inputs("c", 4)
    sums = b.ripple_adder(a, c)
    assert len(sums) == 5
    with pytest.raises(SynthesisError):
        b.ripple_adder(a, c[:3])


def test_cell_histogram_and_area(library):
    b = NetlistBuilder("h")
    x = b.inputs("x")[0]
    y = b.outputs("y")[0]
    n = b.inv(x)
    n = b.inv(n)
    b.cell("BUF_X2", A=n, Y=y)
    m = b.finish()
    hist = m.cell_histogram(library)
    assert hist["INV_X1"] == 2 and hist["BUF_X2"] == 1
    expected = 2 * 0.8 + 1.6
    assert m.total_area_um2(library) == pytest.approx(expected)


def test_const_nets_created_once(library):
    b = NetlistBuilder("c")
    y = b.outputs("y")[0]
    z0 = b.const0()
    z1 = b.const0()
    assert z0 == z1
    b.cell("BUF_X2", A=z0, Y=y)
    m = b.finish()
    ties = [i for i in m.instances if i.cell_name == "TIE0"]
    assert len(ties) == 1
