"""Sequencing-controller generator: gate-level schedule verification."""

import pytest

from repro.arch import MacroArchitecture
from repro.errors import SynthesisError
from repro.rtl.gen.controller import (
    controller_constants,
    generate_controller,
    schedule_for,
)
from repro.rtl.gen.macro import macro_shape
from repro.sim.gatesim import GateSimulator
from repro.spec import INT4, MacroSpec
from repro.tech.stdcells import default_library

LIB = default_library()


def _trace(prelatency, k, total, cycles=None):
    mod = generate_controller(prelatency, k, total, sub_pattern=[1, 0])
    sim = GateSimulator(mod.flatten(), LIB)
    sim.reset_state()
    rows = []
    cycles = cycles or total + 3
    for cyc in range(cycles):
        sim.set_input("start", 1 if cyc == 0 else 0)
        sim.clock()
        rows.append(
            {
                "busy": sim.net("busy"),
                "neg": sim.net("neg"),
                "clear": sim.net("clear"),
                "feed": sim.net("feed"),
                "done": sim.net("done"),
            }
        )
    return rows


class TestSchedule:
    def test_counter_width(self):
        assert controller_constants(2, 4, 9)[0] == 4
        assert controller_constants(1, 2, 4)[0] == 2

    def test_bad_schedule_rejected(self):
        with pytest.raises(SynthesisError):
            controller_constants(9, 4, 9)
        with pytest.raises(SynthesisError):
            controller_constants(2, 9, 9)

    def test_neg_clear_pulse_once_at_prelatency(self):
        rows = _trace(prelatency=2, k=4, total=9)
        pulses = [i for i, r in enumerate(rows) if r["neg"]]
        assert pulses == [2]
        assert all(r["neg"] == r["clear"] for r in rows)

    def test_feed_window(self):
        rows = _trace(prelatency=2, k=4, total=9)
        feed_cycles = [i for i, r in enumerate(rows) if r["feed"]]
        assert feed_cycles == [0, 1, 2, 3]

    def test_done_and_idle_return(self):
        total = 9
        rows = _trace(prelatency=2, k=4, total=total)
        done_cycles = [i for i, r in enumerate(rows) if r["done"]]
        assert done_cycles == [total - 1]
        assert rows[total]["busy"] == 0
        assert rows[total + 1]["neg"] == 0

    def test_busy_spans_run(self):
        total = 9
        rows = _trace(prelatency=2, k=4, total=total)
        assert all(rows[i]["busy"] == 1 for i in range(total))
        assert rows[total]["busy"] == 0

    def test_sub_pattern_static(self):
        mod = generate_controller(2, 4, 9, sub_pattern=[1, 0, 0])
        sim = GateSimulator(mod.flatten(), LIB)
        sim.evaluate()
        assert sim.net("sub[0]") == 1
        assert sim.net("sub[1]") == 0
        assert sim.net("sub[2]") == 0


class TestIntegrationWithShape:
    def test_schedule_from_macro_shape(self):
        spec = MacroSpec(
            height=8,
            width=8,
            mcr=2,
            input_formats=(INT4,),
            weight_formats=(INT4,),
        )
        shape = macro_shape(spec, MacroArchitecture())
        pre, k, total = schedule_for(shape)
        assert pre == 2  # inreg + treereg
        assert k == 4
        assert total == shape.latency_cycles
        # generates and simulates
        rows = _trace(pre, k, total)
        assert [i for i, r in enumerate(rows) if r["neg"]] == [pre]

    def test_prelatency_tracks_registers(self):
        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        merged = macro_shape(spec, MacroArchitecture(reg_after_tree=False))
        split = macro_shape(spec, MacroArchitecture(column_split=2))
        assert merged.prelatency_cycles == 1
        assert split.prelatency_cycles == 3

    def test_controller_drives_macro_correctly(self):
        """Close the loop: controller + macro netlist co-simulated must
        match the behavioural model."""
        import numpy as np
        from macro_tb import MacroTestbench
        from repro.sim.formats import decode_int, encode_int

        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        arch = MacroArchitecture()
        tb = MacroTestbench(spec, arch)
        pre, k, total = schedule_for(tb.shape)
        ctrl = GateSimulator(
            generate_controller(pre, k, total,
                                sub_pattern=tb.model.sub_controls()).flatten(),
            LIB,
        )
        rng = np.random.default_rng(5)
        w = rng.integers(-8, 8, size=(8, tb.model.n_groups))
        tb.load_weights(0, w, INT4)
        tb.load_weights(1, w, INT4)
        tb.select_bank(0)
        x = [int(v) for v in rng.integers(-8, 8, size=8)]
        xbits = [encode_int(v, k) for v in x]
        ctrl.reset_state()
        tb.sim.reset_state()
        # The controller consumes `start` one cycle before the macro
        # sees its first data (feed asserts from the cycle after start
        # is captured), so prime it with one clock first.
        ctrl.set_input("start", 1)
        ctrl.clock()
        ctrl.set_input("start", 0)
        fed = 0
        for _ in range(total + 2):
            feed = ctrl.net("feed")
            if feed and fed < k:
                for r in range(8):
                    tb.sim.set_input(f"x[{r}]", xbits[r][k - 1 - fed])
                fed += 1
            else:
                for r in range(8):
                    tb.sim.set_input(f"x[{r}]", 0)
            tb.sim.set_input("neg", ctrl.net("neg"))
            tb.sim.set_input("clear", ctrl.net("clear"))
            for i, s in enumerate(tb.model.sub_controls()):
                tb.sim.set_input(f"sub[{i}]", ctrl.net(f"sub[{i}]"))
            done = ctrl.net("done")
            tb.sim.clock()
            ctrl.clock()
            if done:
                break
        width = tb.shape.ofu_output_width
        got = [
            decode_int(
                [tb.sim.net(f"y[{g * width + i}]") for i in range(width)]
            )
            for g in range(tb.shape.n_groups)
        ]
        # One more edge for the output register after done.
        if got != tb.expected(x, 0):
            tb.sim.clock()
            got = [
                decode_int(
                    [tb.sim.net(f"y[{g * width + i}]") for i in range(width)]
                )
                for g in range(tb.shape.n_groups)
            ]
        assert got == tb.expected(x, 0)
