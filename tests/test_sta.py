"""Static timing analysis: arrival propagation, slack, paths."""

import pytest

from repro.errors import TimingError
from repro.rtl.ir import Module, NetlistBuilder
from repro.sta.analysis import analyze, minimum_period_ns
from repro.sta.graph import build_timing_graph, net_capacitance
from repro.tech.characterization import SLEW_SENSITIVITY, arc_delay_ns


def _inv_chain(n):
    b = NetlistBuilder("chain")
    a = b.inputs("a")[0]
    y = b.outputs("y")[0]
    node = a
    for i in range(n - 1):
        node = b.inv(node)
    b.cell("INV_X1", A=node, Y=y)
    return b.finish()


def _registered_pipeline():
    """in -> DFF -> 3 inverters -> DFF -> out."""
    b = NetlistBuilder("pipe")
    d = b.inputs("d")[0]
    clk = b.inputs("clk")[0]
    q = b.outputs("q")[0]
    b.module.set_clocks([clk])
    s1 = b.dff(d, clk)
    node = s1
    for _ in range(3):
        node = b.inv(node)
    s2 = b.dff(node, clk)
    b.cell("BUF_X2", A=s2, Y=q)
    return b.finish()


class TestGraph:
    def test_net_capacitance_counts_sinks(self, library):
        m = _inv_chain(3)
        caps = net_capacitance(m, library, wire_load=lambda n: 0.0)
        # each internal net drives one INV_X1 pin (0.9 fF)
        internal = [n for n in m.nets if n not in ("a", "y")]
        for net in internal:
            assert caps[net] == pytest.approx(0.9)

    def test_startpoints_and_endpoints(self, library):
        g = build_timing_graph(_registered_pipeline(), library)
        # Q of the first DFF launches; D of the second captures.
        assert any(net.startswith("dff_q") for net in g.startpoints)
        kinds = {k for k, _ in g.endpoints.values()}
        assert "setup" in kinds and "output" in kinds

    def test_clock_net_excluded_from_data_graph(self, library):
        g = build_timing_graph(_registered_pipeline(), library)
        for edges in g.edges_from.values():
            for e in edges:
                assert e.src_net != "clk"


class TestAnalysis:
    def test_chain_delay_scales_with_length(self, library):
        d4 = minimum_period_ns(_inv_chain(4), library)
        d8 = minimum_period_ns(_inv_chain(8), library)
        assert d8 > d4
        assert d8 / d4 == pytest.approx(2.0, rel=0.35)

    def test_met_vs_violated(self, library):
        m = _inv_chain(6)
        need = minimum_period_ns(m, library)
        assert analyze(m, library, need * 1.01).met
        assert not analyze(m, library, need * 0.9).met

    def test_register_pipeline_period_includes_clocking(self, library):
        m = _registered_pipeline()
        period = minimum_period_ns(m, library)
        dff = library.cell("DFF_X1")
        assert period > dff.clk_to_q_ns + dff.setup_ns

    def test_critical_path_traceback(self, library):
        m = _inv_chain(5)
        rep = analyze(m, library, 10.0)
        assert len(rep.path) == 5
        assert all(s.cell == "INV_X1" for s in rep.path)
        arrivals = [s.arrival_ns for s in rep.path]
        assert arrivals == sorted(arrivals)

    def test_wire_load_slows_paths(self, library):
        m = _inv_chain(6)
        base = minimum_period_ns(m, library)
        loaded = minimum_period_ns(m, library, wire_load=lambda n: 20.0)
        assert loaded > base * 1.5

    def test_slew_affects_delay(self, library):
        cell = library.cell("NAND2_X1")
        arc = cell.arc("A", "Y")
        fast = arc_delay_ns(arc, 0.0, 2.0)
        slow = arc_delay_ns(arc, 0.2, 2.0)
        assert slow - fast == pytest.approx(SLEW_SENSITIVITY * 0.2)

    def test_rejects_nonpositive_period(self, library):
        with pytest.raises(TimingError):
            analyze(_inv_chain(3), library, 0.0)

    def test_endpoint_slacks_complete(self, library):
        m = _registered_pipeline()
        rep = analyze(m, library, 2.0)
        assert rep.endpoint in rep.endpoint_slacks
        assert min(rep.endpoint_slacks.values()) == pytest.approx(
            rep.wns_ns, abs=1e-9
        )

    def test_describe_mentions_status(self, library):
        m = _inv_chain(3)
        rep = analyze(m, library, 5.0)
        assert "MET" in rep.describe()


class TestMacroTiming:
    def test_fa_substitution_speeds_up_column(self, small_spec, library):
        """The searcher's 'faster adder' move must actually help at the
        netlist level."""
        from repro.arch import MacroArchitecture
        from repro.rtl.gen.macro import generate_column_slice

        slow = generate_column_slice(
            small_spec, MacroArchitecture(tree_style="cmp42", reg_after_tree=False)
        ).flatten()
        fast = generate_column_slice(
            small_spec,
            MacroArchitecture(
                tree_style="mixed", tree_fa_levels=2, reg_after_tree=False
            ),
        ).flatten()
        assert minimum_period_ns(fast, library) <= minimum_period_ns(
            slow, library
        ) + 1e-9

    def test_tree_register_cuts_path(self, small_spec, library):
        from repro.arch import MacroArchitecture
        from repro.rtl.gen.macro import generate_column_slice

        merged = generate_column_slice(
            small_spec, MacroArchitecture(reg_after_tree=False)
        ).flatten()
        split = generate_column_slice(
            small_spec, MacroArchitecture(reg_after_tree=True)
        ).flatten()
        assert minimum_period_ns(split, library) < minimum_period_ns(
            merged, library
        )


class TestCorners:
    def test_ss_corner_slows_ff_speeds(self, library):
        from repro.tech.process import CORNERS

        m = _inv_chain(6)
        tt = minimum_period_ns(m, library)
        ss = minimum_period_ns(
            m, library, derate=CORNERS["SS"].delay_factor
        )
        ff = minimum_period_ns(
            m, library, derate=CORNERS["FF"].delay_factor
        )
        assert ff < tt < ss
        assert ss / tt == pytest.approx(CORNERS["SS"].delay_factor, rel=0.05)

    def test_bad_derate_rejected(self, library):
        from repro.errors import TimingError

        with pytest.raises(TimingError):
            analyze(_inv_chain(3), library, 1.0, derate=0.0)
