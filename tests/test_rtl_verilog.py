"""Structural Verilog emission."""

import re

from repro.rtl.ir import NetlistBuilder
from repro.rtl.verilog import count_instances, emit_verilog
from repro.rtl.gen.addertree import generate_adder_tree


def _small_module():
    b = NetlistBuilder("demo")
    a = b.inputs("a", 2)
    y = b.outputs("y")[0]
    n = b.and2(a[0], a[1])
    b.cell("BUF_X2", A=n, Y=y)
    return b.finish()


def test_module_header_and_end():
    v = emit_verilog(_small_module())
    assert v.startswith("module demo (")
    assert v.rstrip().endswith("endmodule")


def test_bus_ports_declared_as_vectors():
    v = emit_verilog(_small_module())
    assert re.search(r"input \[1:0\] a;", v)
    assert "output y;" in v


def test_instances_emitted_with_connections():
    v = emit_verilog(_small_module())
    assert ".A(" in v and ".Y(" in v
    assert "AND2_X1" in v and "BUF_X2" in v


def test_hierarchical_names_escaped():
    tree, _ = generate_adder_tree(8, "cmp42")
    flat = tree.flatten()
    v = emit_verilog(flat)
    # escaped identifiers start with backslash and end with a space
    assert "\\" in v


def test_count_instances_matches_leafs():
    m = _small_module()
    v = emit_verilog(m)
    assert count_instances(v) == m.leaf_count()


def test_generated_tree_verilog_is_consistent():
    tree, stats = generate_adder_tree(16, "mixed", fa_levels=1)
    flat = tree.flatten()
    v = emit_verilog(flat)
    assert v.count("CMP42_X1") == stats.compressors
    assert v.count("FA_X1") == stats.full_adders
