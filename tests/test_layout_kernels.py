"""Vectorized layout/synthesis kernels against their scalar references.

The implementation-flow hot path (DRC overlap sweep, routing
estimation, the synthesis pass pipeline, shelf packing) was rewritten
over coordinate arrays and the integer-indexed NetView.  These tests pin
the fast kernels to the retained reference implementations — randomized
inputs plus real placed macros — mirroring ``tests/test_vector_kernels``
for the analysis kernels:

* :func:`repro.layout.geometry.overlap_pairs` must produce the exact
  pair list (order included) of the scalar ``sweep_overlaps``;
* :func:`repro.layout.route.estimate_routing` must match
  ``estimate_routing_reference`` bit-for-bit on every per-net length
  and cap;
* the in-place NetView synthesis passes must produce the identical
  netlist (instances, connections, net table, order) as the retained
  ``*_reference`` rebuild passes;
* the vectorized shelf packer must assign the same rows as the scalar
  ``_shelf_pack``;
* ``run_drc`` must sweep the full rect set even when the report caps
  (the old scalar loop truncated the sweep input).
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.arch import MacroArchitecture
from repro.layout.drc import run_drc
from repro.layout.geometry import (
    Rect,
    overlap_pairs,
    rect_arrays,
    sweep_overlaps,
)
from repro.layout.route import estimate_routing, estimate_routing_reference
from repro.layout.sdp import (
    CellRects,
    _pack_rows,
    _shelf_pack,
    place_macro,
)
from repro.rtl.gen.macro import generate_macro, generate_macro_with_array
from repro.spec import INT4, INT8, MacroSpec
from repro.synth.optimize import (
    buffer_high_fanout,
    buffer_high_fanout_reference,
    optimize,
    optimize_reference,
    propagate_constants,
    propagate_constants_reference,
    sweep_dead_logic,
    sweep_dead_logic_reference,
)


@pytest.fixture(scope="module")
def placed_macro(library):
    spec = MacroSpec(
        height=16,
        width=16,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
    )
    module, _ = generate_macro_with_array(spec, MacroArchitecture())
    flat = module.flatten()
    flat, _ = optimize(flat, library)
    placement = place_macro(flat, library)
    return flat, placement


def _random_rects(rng, n, span=60.0, max_dim=4.0):
    rects = []
    for i in range(n):
        x = rng.uniform(0, span)
        y = rng.uniform(0, span)
        w = rng.uniform(0.0, max_dim)
        h = rng.uniform(0.0, max_dim)
        rects.append((f"r{i}", Rect(x, y, x + w, y + h)))
    return rects


class TestOverlapPairsEquivalence:
    def test_randomized_exact_match(self):
        rng = random.Random(7)
        for _ in range(60):
            rects = _random_rects(rng, rng.randint(2, 80))
            names = [n for n, _ in rects]
            coords = np.array(
                [[r.x0, r.y0, r.x1, r.y1] for _, r in rects]
            )
            assert overlap_pairs(names, coords) == list(sweep_overlaps(rects))

    def test_shared_edges_and_ties(self):
        rects = [
            ("a", Rect(0, 0, 2, 2)),
            ("b", Rect(0, 0, 2, 2)),  # identical x0: stable-sort tie
            ("c", Rect(2, 0, 4, 2)),  # shared edge with a/b: no overlap
            ("d", Rect(1, 1, 3, 3)),
            ("e", Rect(1.5, -1, 1.7, 5)),  # tall sliver crossing rows
        ]
        names = [n for n, _ in rects]
        coords = np.array([[r.x0, r.y0, r.x1, r.y1] for _, r in rects])
        assert overlap_pairs(names, coords) == list(sweep_overlaps(rects))

    def test_degenerate_zero_size(self):
        rects = [("a", Rect(1, 1, 1, 1)), ("b", Rect(1, 1, 1, 1)),
                 ("c", Rect(0, 0, 3, 3))]
        names = [n for n, _ in rects]
        coords = np.array([[r.x0, r.y0, r.x1, r.y1] for _, r in rects])
        assert overlap_pairs(names, coords) == list(sweep_overlaps(rects))

    def test_macro_placement_is_clean_in_both(self, placed_macro):
        _, placement = placed_macro
        names, coords = rect_arrays(placement.cells)
        fast = overlap_pairs(names, coords)
        ref = list(sweep_overlaps(list(placement.cells.items())))
        assert fast == ref == []


class TestDRCTruncation:
    def _stacked_placement(self, placement, n, offenders):
        """`n` overlapping cells at one spot + `offenders` outside."""
        names = [f"c{i}" for i in range(n + offenders)]
        coords = np.zeros((n + offenders, 4))
        coords[:n] = [1.0, 1.0, 2.0, 2.0]
        for j in range(offenders):
            coords[n + j] = [-10.0 - j, -10.0, -9.0 - j, -9.0]
        import dataclasses

        return dataclasses.replace(
            placement,
            cells=CellRects(names, coords),
            outline=Rect(0.0, 0.0, 50.0, 50.0),
        )

    def test_report_caps_but_sweep_sees_everything(self, placed_macro, library):
        flat, placement = placed_macro
        # 12 boundary offenders hit max_violations=10 first; the 8
        # stacked cells must STILL be swept (8*7/2 = 28 overlaps).
        broken = self._stacked_placement(placement, n=8, offenders=12)
        report = run_drc(flat, broken, library, max_violations=10)
        assert len(report.violations) == 10
        assert report.truncated
        assert report.total_violations == 12 + 28
        assert not report.clean
        assert "reported" in report.describe()

    def test_uncapped_report_counts(self, placed_macro, library):
        flat, placement = placed_macro
        broken = self._stacked_placement(placement, n=4, offenders=3)
        report = run_drc(flat, broken, library)
        assert report.count("boundary") == 3
        assert report.count("overlap") == 6
        assert not report.truncated
        assert report.total_violations == 9

    def test_clean_macro(self, placed_macro, library):
        flat, placement = placed_macro
        report = run_drc(flat, placement, library)
        assert report.clean
        assert report.total_violations == 0


class TestRoutingEquivalence:
    def _check(self, flat, placement, library, process):
        fast = estimate_routing(flat, placement, library, process)
        ref = estimate_routing_reference(flat, placement, library, process)
        assert set(fast.net_lengths_um) == set(ref.net_lengths_um)
        for net, length in ref.net_lengths_um.items():
            assert fast.net_lengths_um[net] == length, net  # bit-for-bit
            assert fast.net_caps_ff[net] == ref.net_caps_ff[net], net
        assert fast.total_wirelength_um == pytest.approx(
            ref.total_wirelength_um, rel=1e-12
        )
        assert fast.congestion == pytest.approx(ref.congestion, rel=1e-12)
        assert fast.layers_assumed == ref.layers_assumed

    def test_macro_placement(self, placed_macro, library, process):
        flat, placement = placed_macro
        self._check(flat, placement, library, process)

    def test_randomized_scatter(self, placed_macro, library, process):
        """Same netlist, pseudo-random placement (plain-dict cell map)."""
        flat, placement = placed_macro
        rng = random.Random(3)
        cells = {}
        for inst in flat.instances:
            x = rng.uniform(0, 300)
            y = rng.uniform(0, 150)
            cells[inst.name] = Rect(x, y, x + rng.uniform(0.2, 3), y + 1.8)
        import dataclasses

        scattered = dataclasses.replace(placement, cells=cells)
        self._check(flat, scattered, library, process)

    def test_missing_instance_raises(self, placed_macro, library, process):
        from repro.errors import LayoutError

        flat, placement = placed_macro
        cells = dict(placement.cells)
        victim = flat.instances[5].name
        del cells[victim]
        import dataclasses

        broken = dataclasses.replace(placement, cells=cells)
        with pytest.raises(LayoutError, match="missing from placement"):
            estimate_routing(flat, broken, library, process)
        with pytest.raises(LayoutError, match="missing from placement"):
            estimate_routing_reference(flat, broken, library, process)


def _module_equal(a, b):
    __tracebackhide__ = True
    assert a.name == b.name
    assert list(a.ports) == list(b.ports)
    assert a.clock_nets == b.clock_nets
    assert len(a.instances) == len(b.instances)
    for ia, ib in zip(a.instances, b.instances):
        assert ia.name == ib.name
        assert ia.ref == ib.ref
        assert ia.conn == ib.conn, ia.name
    assert list(a.nets) == list(b.nets)


def _synth_modules():
    from repro.rtl.gen.addertree import generate_adder_tree
    from repro.rtl.gen.drivers import generate_wl_driver
    from repro.rtl.gen.ofu import OFUConfig, generate_fuse_stage, generate_ofu
    from repro.rtl.gen.shiftadder import generate_shift_adder

    mods = []
    for style, fa in (("rca", 0), ("cmp42", 0), ("mixed", 2)):
        mod, _ = generate_adder_tree(16, style, fa, True)
        mods.append(mod)
    mods.append(generate_shift_adder(5, 4))
    mods.append(generate_ofu(OFUConfig(columns=4, input_width=12)))
    mods.append(generate_fuse_stage(10, 2))
    mods.append(generate_wl_driver(4, 12.0, 4))
    return [m if m.is_flat else m.flatten() for m in mods]


class TestSynthPassEquivalence:
    """The NetView in-place passes vs the retained rebuild references."""

    def test_all_passes_on_subcircuits(self, library):
        for m in _synth_modules():
            snapshot = [(i.name, dict(i.conn)) for i in m.instances]
            loads = m.net_loads(library)
            maxfan = max(
                (len(v) for k, v in loads.items() if k not in m.clock_nets),
                default=0,
            )
            # limit**2 >= max fanout keeps the reference single round a
            # fixed point, so the outputs must match exactly.
            limit = max(3, int(maxfan**0.5) + 1)

            for fast_fn, ref_fn, kwargs in (
                (propagate_constants, propagate_constants_reference, {}),
                (sweep_dead_logic, sweep_dead_logic_reference, {}),
                (
                    buffer_high_fanout,
                    buffer_high_fanout_reference,
                    {"limit": limit},
                ),
            ):
                fast, n_fast = fast_fn(m, library, **kwargs)
                ref, n_ref = ref_fn(m, library, **kwargs)
                assert n_fast == n_ref, (m.name, fast_fn.__name__)
                if ref is m:
                    assert fast is m, (m.name, fast_fn.__name__)
                else:
                    _module_equal(fast, ref)
            # Input module untouched by any pass.
            assert snapshot == [(i.name, dict(i.conn)) for i in m.instances]

    def test_full_pipeline_on_macro(self, library, small_spec, default_arch):
        mac, _ = generate_macro(small_spec, default_arch)
        flat = mac.flatten()
        fast, stats_fast = optimize(flat, library)
        ref, stats_ref = optimize_reference(mac.flatten(), library)
        assert stats_fast == stats_ref
        _module_equal(fast, ref)

    def test_inplace_pipeline_matches(self, library, small_spec, default_arch):
        mac, _ = generate_macro(small_spec, default_arch)
        ref, stats_ref = optimize(mac.flatten(), library)
        flat = mac.flatten()
        out, stats = optimize(flat, library, inplace=True)
        assert out is flat  # mutated in place, no copy
        assert stats == stats_ref
        _module_equal(out, ref)


class TestMultiplyDrivenGuard:
    def test_passes_reject_multiply_driven_nets(self, library):
        """The in-place passes must fail as loudly as the old
        pre-synthesis validate() did — a multiply-driven net would
        otherwise be silently resolved to one driver (and the dead
        sweep could delete the other)."""
        from repro.errors import SynthesisError
        from repro.rtl.ir import NetlistBuilder

        b = NetlistBuilder("mdrv")
        a = b.inputs("a")[0]
        y = b.outputs("y")[0]
        b.cell("INV_X1", A=a, Y=y)
        b.cell("BUF_X2", A=a, Y=y)  # second driver on y
        m = b.finish()
        for pass_fn in (propagate_constants, sweep_dead_logic,
                        buffer_high_fanout, optimize):
            with pytest.raises(SynthesisError, match="multiply driven"):
                pass_fn(m, library)


class TestFanoutFixedPoint:
    def test_repeater_sources_respect_limit(self, library):
        """A net with more than limit**2 sinks: the reference leaves the
        repeater source net heavy, the fixed-point pass does not."""
        from repro.rtl.ir import NetlistBuilder

        limit = 3
        b = NetlistBuilder("wide")
        a = b.inputs("a")[0]
        outs = b.outputs("y", 2 * limit * limit + 1)  # 19 sinks > 9
        for i in range(len(outs)):
            b.cell("BUF_X2", A=a, Y=outs[i])
        m = b.finish()

        ref, _ = buffer_high_fanout_reference(m, library, limit=limit)
        ref_loads = ref.net_loads(library)
        assert len(ref_loads["a"]) > limit  # the bug being fixed

        fixed, added = buffer_high_fanout(m, library, limit=limit)
        fixed.validate(library)
        loads = fixed.net_loads(library)
        over = {
            net: len(sinks)
            for net, sinks in loads.items()
            if len(sinks) > limit and net not in fixed.clock_nets
        }
        assert not over
        assert added > 0

    def test_function_preserved_through_fixed_point(self, library):
        from repro.rtl.ir import NetlistBuilder
        from repro.sim.gatesim import GateSimulator

        b = NetlistBuilder("wide2")
        a = b.inputs("a")[0]
        outs = b.outputs("y", 40)
        for i in range(40):
            b.cell("INV_X1", A=a, Y=outs[i])
        m = b.finish()
        buffered, _ = buffer_high_fanout(m, library, limit=3)
        s1, s2 = GateSimulator(m, library), GateSimulator(buffered, library)
        for val in (0, 1):
            s1.set_input("a", val)
            s2.set_input("a", val)
            s1.evaluate()
            s2.evaluate()
            for i in range(40):
                assert s1.net(f"y[{i}]") == s2.net(f"y[{i}]")


class TestPackRowsEquivalence:
    def _reference_rows(self, widths, region, row_h, library):
        """Drive the scalar _shelf_pack through stub instances."""
        from repro.rtl.ir import Instance

        class _StubCell:
            def __init__(self, w):
                self.width_um = w
                self.area_um2 = w * row_h

        class _StubLib:
            def __init__(self, cells):
                self._cells = cells

            def cell(self, name):
                return self._cells[name]

        cells = {f"W{i}": _StubCell(w) for i, w in enumerate(widths)}
        instances = [
            Instance(name=f"i{i}", ref=f"W{i}", conn={})
            for i in range(len(widths))
        ]
        placed = {}
        ok = _shelf_pack(instances, _StubLib(cells), region, row_h, placed)
        return ok, placed

    def test_randomized_pack_matches_reference(self, library):
        rng = random.Random(11)
        for _ in range(40):
            n = rng.randint(1, 120)
            widths = np.array([rng.uniform(0.2, 4.0) for _ in range(n)])
            region = Rect(
                rng.uniform(0, 5),
                rng.uniform(0, 5),
                rng.uniform(6, 25),
                rng.uniform(6, 80),
            )
            row_h = 1.8
            ok_ref, placed = self._reference_rows(widths, region, row_h, library)
            packed = _pack_rows(widths, region, row_h)
            if not ok_ref:
                assert packed is None
                continue
            assert packed is not None
            x0s, x1s, y0s = packed
            for i in range(n):
                rect = placed[f"i{i}"]
                assert x0s[i] == pytest.approx(rect.x0, rel=1e-12, abs=1e-12)
                assert x1s[i] == pytest.approx(rect.x1, rel=1e-12, abs=1e-12)
                assert y0s[i] == pytest.approx(rect.y0, rel=1e-12, abs=1e-12)

    def test_overflow_detected(self):
        widths = np.array([5.0])
        assert _pack_rows(widths, Rect(0, 0, 4, 10), 1.8) is None
        # Vertical overflow: 4 rows of 1.8 in a 3.0-tall region.
        widths = np.array([3.0, 3.0, 3.0, 3.0])
        assert _pack_rows(widths, Rect(0, 0, 4, 3.0), 1.8) is None


class TestCellRects:
    def test_mapping_semantics(self):
        names = ["a", "b"]
        coords = np.array([[0.0, 0.0, 1.0, 1.0], [2.0, 0.0, 3.0, 1.8]])
        cm = CellRects(names, coords)
        assert len(cm) == 2
        assert list(cm) == names
        assert "a" in cm and "z" not in cm
        assert cm["b"] == Rect(2.0, 0.0, 3.0, 1.8)
        assert dict(cm) == {
            "a": Rect(0.0, 0.0, 1.0, 1.0),
            "b": Rect(2.0, 0.0, 3.0, 1.8),
        }
        assert cm == {
            "a": Rect(0.0, 0.0, 1.0, 1.0),
            "b": Rect(2.0, 0.0, 3.0, 1.8),
        }
        assert cm.get("missing") is None

    def test_pickle_roundtrip(self):
        names = ["x"]
        coords = np.array([[0.0, 0.0, 1.0, 1.0]])
        cm = CellRects(names, coords)
        back = pickle.loads(pickle.dumps(cm))
        assert dict(back) == dict(cm)

    def test_rect_arrays_fast_path_and_fallback(self, placed_macro):
        _, placement = placed_macro
        names, coords = rect_arrays(placement.cells)
        assert len(names) == len(placement.cells)
        # Fallback from a plain dict gives identical arrays.
        names2, coords2 = rect_arrays(dict(placement.cells))
        assert names == names2
        assert np.array_equal(coords, coords2)


class TestImplementSession:
    def test_array_and_result_reuse(self, library, process):
        from repro.compiler.flow import ImplementSession

        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        arch = MacroArchitecture()
        session = ImplementSession(spec, library=library, process=process)
        a1 = session.array_module(arch)
        a2 = session.array_module(arch)
        assert a1 is a2  # the bitcell array survives attempts
        assert a1._template_fresh()  # primed flatten template
        impl1 = session.implement(arch)
        impl2 = session.implement(arch)
        assert impl1 is impl2  # revisited architectures are cached

    def test_session_matches_oneshot_implement(self, library, process):
        from repro.compiler.flow import ImplementSession, implement

        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        arch = MacroArchitecture()
        session = ImplementSession(spec, library=library, process=process)
        via_session = session.implement(arch)
        oneshot = implement(spec, arch, library=library, process=process)
        assert via_session.summary() == oneshot.summary()
        assert via_session.signoff_clean and oneshot.signoff_clean

    def test_escalation_reuses_session_array(self, scl, library, process):
        """Different architectures in one session share the array."""
        from repro.compiler.flow import ImplementSession

        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        session = ImplementSession(spec, library=library, process=process)
        a0 = MacroArchitecture()
        a1 = a0.replace(driver_strength=8)
        assert a0 != a1
        impl0 = session.implement(a0)
        impl1 = session.implement(a1)
        assert impl0 is not impl1
        assert len(session._arrays) == 1  # same (h, w, mcr, memcell)
        assert impl0.signoff_clean and impl1.signoff_clean
