"""Multiplier/mux, memory array, drivers, S&A, OFU, alignment —
functional verification of every subcircuit generator against its
behavioural contract."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.rtl.gen.alignment import generate_alignment_unit
from repro.rtl.gen.drivers import (
    buffer_chain_for_load,
    generate_bl_driver,
    generate_wl_driver,
)
from repro.rtl.gen.memarray import generate_memory_array
from repro.rtl.gen.multiplier import generate_mult_mux
from repro.rtl.gen.ofu import (
    OFUConfig,
    generate_fuse_stage,
    generate_ofu,
    ofu_boundaries,
)
from repro.rtl.gen.shiftadder import accumulator_width, generate_shift_adder
from repro.sim.formats import (
    FPFields,
    align_group,
    decode_int,
    encode_int,
    quantize_to_fp,
    wrap_to_width,
)
from repro.sim.gatesim import GateSimulator
from repro.spec import FP4, FP8
from repro.tech.stdcells import default_library

LIB = default_library()


class TestMultMux:
    @pytest.mark.parametrize("style", ["tg_nor", "oai22", "pg_1t"])
    @pytest.mark.parametrize("mcr", [1, 2])
    def test_product_truth_table(self, style, mcr):
        mod = generate_mult_mux(mcr, style).flatten()
        sim = GateSimulator(mod, LIB)
        sel_bits = int(math.log2(mcr)) if mcr > 1 else 0
        for x in (0, 1):
            for bank in range(mcr):
                for weights in range(1 << mcr):
                    wvec = [(weights >> i) & 1 for i in range(mcr)]
                    sim.set_input("xb", 1 - x)
                    for i, w in enumerate(wvec):
                        sim.set_input(f"wb[{i}]", 1 - w)
                    for i in range(sel_bits):
                        sim.set_input(f"sel[{i}]", (bank >> i) & 1)
                    sim.evaluate()
                    assert sim.net("p") == (x & wvec[bank])

    @pytest.mark.parametrize("style", ["tg_nor", "pg_1t"])
    @pytest.mark.parametrize("mcr", [4, 8])
    def test_deep_mcr_mux_tree(self, style, mcr):
        mod = generate_mult_mux(mcr, style).flatten()
        sim = GateSimulator(mod, LIB)
        rng = random.Random(7)
        for _ in range(20):
            x = rng.randint(0, 1)
            bank = rng.randrange(mcr)
            wvec = [rng.randint(0, 1) for _ in range(mcr)]
            sim.set_input("xb", 1 - x)
            for i, w in enumerate(wvec):
                sim.set_input(f"wb[{i}]", 1 - w)
            for i in range(int(math.log2(mcr))):
                sim.set_input(f"sel[{i}]", (bank >> i) & 1)
            sim.evaluate()
            assert sim.net("p") == (x & wvec[bank])

    def test_oai22_rejects_deep_mcr(self):
        with pytest.raises(SynthesisError):
            generate_mult_mux(4, "oai22")

    def test_mcr_must_be_power_of_two(self):
        with pytest.raises(SynthesisError):
            generate_mult_mux(3, "tg_nor")

    def test_area_ordering(self):
        areas = {}
        for style in ("tg_nor", "oai22", "pg_1t"):
            flat = generate_mult_mux(2, style).flatten()
            areas[style] = flat.total_area_um2(LIB)
        assert areas["pg_1t"] < areas["tg_nor"]


class TestMemoryArray:
    def test_counts_and_stats(self):
        mod, stats = generate_memory_array(8, 4, 2, "DCIM6T")
        assert stats.compute_cells == 32
        assert stats.storage_cells == 32
        hist = mod.flatten().cell_histogram(LIB)
        assert hist["DCIM6T"] == 32
        assert hist["SRAM6T"] == 32

    def test_mcr1_has_no_storage_bank(self):
        _, stats = generate_memory_array(8, 8, 1, "DCIM8T")
        assert stats.storage_cells == 0

    def test_ports_cover_all_cells(self):
        mod, _ = generate_memory_array(4, 4, 2)
        assert len([p for p in mod.input_ports if p.startswith("wl")]) == 8
        assert len([p for p in mod.output_ports if p.startswith("wb")]) == 32

    def test_rejects_unknown_cell(self):
        with pytest.raises(SynthesisError):
            generate_memory_array(4, 4, 1, "SRAM5T")


class TestDrivers:
    def test_buffer_chain_grows_with_load(self):
        small = buffer_chain_for_load(5.0, 4)
        large = buffer_chain_for_load(500.0, 4)
        assert len(large) > len(small)
        assert large[-1] == "BUF_X4"

    def test_wl_driver_registers_and_inverts(self):
        mod = generate_wl_driver(4, wordline_load_ff=20.0).flatten()
        sim = GateSimulator(mod, LIB)
        for bits in ((0, 1, 0, 1), (1, 1, 0, 0)):
            for i, b in enumerate(bits):
                sim.set_input(f"x[{i}]", b)
            sim.clock()
            for i, b in enumerate(bits):
                assert sim.net(f"xb[{i}]") == 1 - b

    def test_bl_driver_gates_with_we(self):
        mod = generate_bl_driver(4, bitline_load_ff=20.0).flatten()
        sim = GateSimulator(mod, LIB)
        for i in range(4):
            sim.set_input(f"d[{i}]", 1)
        sim.set_input("we", 0)
        sim.clock()
        assert all(sim.net(f"bl[{i}]") == 0 for i in range(4))
        sim.set_input("we", 1)
        sim.clock()
        assert all(sim.net(f"bl[{i}]") == 1 for i in range(4))


class TestShiftAdder:
    def _run(self, tree_w, k, counts, negs, clears):
        mod = generate_shift_adder(tree_w, k).flatten()
        sim = GateSimulator(mod, LIB)
        width = accumulator_width(tree_w, k)
        acc_model = 0
        sim.reset_state()
        results = []
        for count, neg, clear in zip(counts, negs, clears):
            for i in range(tree_w):
                sim.set_input(f"t[{i}]", (count >> i) & 1)
            sim.set_input("neg", neg)
            sim.set_input("clear", clear)
            sim.clock()
            base = 0 if clear else acc_model << 1
            acc_model = wrap_to_width(base + (-count if neg else count), width)
            got = decode_int([sim.net(f"acc[{i}]") for i in range(width)])
            results.append((got, acc_model))
        return results

    def test_msb_first_accumulation(self):
        # Accumulate x = -3 (1101 two's complement, MSB first) with
        # constant count 5: result = -3 * 5.
        counts = [5, 5, 5, 5]
        bits_msb_first = [1, 1, 0, 1]  # -3 = 1101b
        negs = [1, 0, 0, 0]
        clears = [1, 0, 0, 0]
        # Gate the count by the input bit like the array would.
        seq = [c * bit for c, bit in zip(counts, bits_msb_first)]
        results = self._run(4, 4, seq, negs, clears)
        assert results[-1][0] == -3 * 5
        for got, expect in results:
            assert got == expect

    @settings(max_examples=30, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 15), min_size=5, max_size=5),
        negs=st.lists(st.integers(0, 1), min_size=5, max_size=5),
    )
    def test_property_matches_reference(self, counts, negs):
        clears = [1, 0, 0, 0, 0]
        for got, expect in self._run(4, 5, counts, negs, clears):
            assert got == expect

    def test_rejects_bad_widths(self):
        with pytest.raises(SynthesisError):
            generate_shift_adder(0, 4)


class TestOFU:
    @staticmethod
    def _model(words, stages, subs):
        cur = list(words)
        for s in range(1, stages + 1):
            shift = 1 << (s - 1)
            nxt = []
            for i in range(0, len(cur), 2):
                sub = bool(subs[s - 1]) and i == len(cur) - 2
                hi = -cur[i + 1] if sub else cur[i + 1]
                nxt.append(cur[i] + (hi << shift))
            cur = nxt
        return cur[0]

    @pytest.mark.parametrize("style", ["ripple", "csel"])
    @pytest.mark.parametrize("cols,w", [(2, 6), (4, 8), (8, 10)])
    def test_fusion_matches_model(self, style, cols, w):
        cfg = OFUConfig(columns=cols, input_width=w, adder_style=style)
        sim = GateSimulator(generate_ofu(cfg).flatten(), LIB)
        stages = cfg.stages
        subs = [1] + [0] * (stages - 1)
        rng = random.Random(cols * w)
        for _ in range(25):
            words = [
                rng.randint(-(1 << (w - 1)), (1 << (w - 1)) - 1)
                for _ in range(cols)
            ]
            for j, v in enumerate(words):
                for i, bit in enumerate(encode_int(v, w)):
                    sim.set_input(f"a{j}[{i}]", bit)
            for s, v in enumerate(subs):
                sim.set_input(f"sub[{s}]", v)
            sim.evaluate()
            got = decode_int(
                [sim.net(f"y[{i}]") for i in range(cfg.output_width)]
            )
            assert got == self._model(words, stages, subs)

    def test_pipelined_ofu_latency(self):
        cfg = OFUConfig(
            columns=4, input_width=6, pipeline_after=(1,), input_register=True
        )
        sim = GateSimulator(generate_ofu(cfg).flatten(), LIB)
        words = [3, -2, 5, 1]
        for j, v in enumerate(words):
            for i, bit in enumerate(encode_int(v, 6)):
                sim.set_input(f"a{j}[{i}]", bit)
        sim.set_input("sub[0]", 1)
        sim.set_input("sub[1]", 0)
        sim.reset_state()
        for _ in range(cfg.latency_cycles):
            sim.clock()
        got = decode_int([sim.net(f"y[{i}]") for i in range(cfg.output_width)])
        assert got == self._model(words, 2, [1, 0])

    def test_stage_width_arithmetic(self):
        cfg = OFUConfig(columns=8, input_width=10)
        assert cfg.stage_width(0) == 10
        assert cfg.stage_width(1) == 12
        assert cfg.stage_width(2) == 15
        assert cfg.output_width == cfg.stage_width(3) == 20

    def test_boundaries_rule(self):
        assert ofu_boundaries(3, True, 0) == (1,)
        assert ofu_boundaries(3, True, 1) == (1, 2)
        assert ofu_boundaries(3, False, 2) == (1, 2)
        assert ofu_boundaries(4, True, 1) == (1, 2)
        assert ofu_boundaries(1, False, 2) == ()

    def test_csel_faster_than_ripple(self):
        from repro.sta.analysis import minimum_period_ns

        rpl = generate_fuse_stage(20, 4, adder_style="ripple").flatten()
        cs = generate_fuse_stage(20, 4, adder_style="csel").flatten()
        assert minimum_period_ns(cs, LIB) < minimum_period_ns(rpl, LIB)
        assert cs.total_area_um2(LIB) > rpl.total_area_um2(LIB)

    def test_rejects_non_pow2_columns(self):
        with pytest.raises(SynthesisError):
            OFUConfig(columns=3, input_width=8)


class TestAlignment:
    @pytest.mark.parametrize("fmt", [FP4, FP8])
    def test_alignment_matches_behavioural_twin(self, fmt):
        lanes = 4
        mod = generate_alignment_unit(fmt, lanes).flatten()
        sim = GateSimulator(mod, LIB)
        rng = random.Random(fmt.bits)
        sig_w = fmt.mantissa + 2
        for _ in range(20):
            fields = [
                FPFields(
                    sign=rng.randint(0, 1),
                    exponent=rng.randrange(1 << fmt.exponent),
                    mantissa=rng.randrange(1 << fmt.mantissa),
                    fmt=fmt,
                )
                for _ in range(lanes)
            ]
            for lane, f in enumerate(fields):
                for i, bit in enumerate(f.pack_bits()):
                    sim.set_input(f"fp{lane}[{i}]", bit)
            sim.evaluate()
            expect_aligned, expect_emax = align_group(fields)
            got_emax = sum(
                sim.net(f"emax[{i}]") << i for i in range(fmt.exponent)
            )
            assert got_emax == expect_emax
            for lane in range(lanes):
                got = decode_int(
                    [sim.net(f"q{lane}[{i}]") for i in range(sig_w)]
                )
                assert got == expect_aligned[lane], (fields[lane], lane)

    def test_subnormals_have_no_hidden_one(self):
        fmt = FP8
        mod = generate_alignment_unit(fmt, 2).flatten()
        sim = GateSimulator(mod, LIB)
        # lane0 subnormal (e=0,m=1), lane1 normal e=1,m=0 => emax=1.
        lanes = [
            FPFields(sign=0, exponent=0, mantissa=1, fmt=fmt),
            FPFields(sign=0, exponent=1, mantissa=0, fmt=fmt),
        ]
        for lane, f in enumerate(lanes):
            for i, bit in enumerate(f.pack_bits()):
                sim.set_input(f"fp{lane}[{i}]", bit)
        sim.evaluate()
        aligned, emax = align_group(lanes)
        assert emax == 1
        got0 = decode_int([sim.net(f"q0[{i}]") for i in range(5)])
        # subnormal scales like exponent 1 (no shift, no hidden bit)
        assert got0 == aligned[0] == 1
        got1 = decode_int([sim.net(f"q1[{i}]") for i in range(5)])
        assert got1 == aligned[1] == 8  # 1.000 -> hidden<<3

    def test_rejects_int_format(self):
        from repro.spec import INT8

        with pytest.raises(SynthesisError):
            generate_alignment_unit(INT8, 4)
