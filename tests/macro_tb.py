"""Shared gate-level testbench for full-macro simulations."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.arch import MacroArchitecture
from repro.rtl.gen.macro import generate_macro
from repro.sim.formats import decode_int, encode_int
from repro.sim.functional import DCIMMacroModel
from repro.sim.gatesim import GateSimulator
from repro.spec import MacroSpec
from repro.tech.stdcells import default_library


class MacroTestbench:
    """Drives a generated digital macro netlist cycle-accurately."""

    def __init__(self, spec: MacroSpec, arch: MacroArchitecture) -> None:
        self.spec = spec
        self.arch = arch
        module, self.shape = generate_macro(spec, arch)
        self.flat = module.flatten()
        self.sim = GateSimulator(self.flat, default_library())
        self.model = DCIMMacroModel(spec, arch)
        # Cycles until the first serial bit's tree count reaches the S&A.
        self.lpre = (
            1
            + (1 if arch.reg_after_tree else 0)
            + (1 if arch.column_split > 1 else 0)
        )

    def load_weights(self, bank: int, weights: np.ndarray, fmt) -> None:
        self.model.set_weights_int(bank, weights, fmt)
        bits = self.model.weight_bits(bank)
        h, w, mcr = self.spec.height, self.spec.width, self.spec.mcr
        for r in range(h):
            for c in range(w):
                self.sim.set_input(
                    f"wb[{(r * mcr + bank) * w + c}]", 1 - int(bits[r, c])
                )

    def select_bank(self, bank: int) -> None:
        mcr = self.spec.mcr
        for i in range(int(math.log2(mcr)) if mcr > 1 else 0):
            self.sim.set_input(f"sel[{i}]", (bank >> i) & 1)

    def run_mac(self, x: Sequence[int], bank: int = 0) -> List[int]:
        """Feed one input vector and return the fused outputs."""
        spec, sim = self.spec, self.sim
        k = spec.input_width
        xbits = [encode_int(int(v), k) for v in x]
        self.select_bank(bank)
        for i, s in enumerate(self.model.sub_controls()):
            sim.set_input(f"sub[{i}]", s)
        sim.reset_state()
        for cyc in range(self.shape.latency_cycles):
            for r in range(spec.height):
                bit = xbits[r][k - 1 - cyc] if cyc < k else 0
                sim.set_input(f"x[{r}]", bit)
            ctrl = 1 if cyc == self.lpre else 0
            sim.set_input("neg", ctrl)
            sim.set_input("clear", ctrl)
            sim.clock()
        width = self.shape.ofu_output_width
        return [
            decode_int(
                [sim.net(f"y[{g * width + i}]") for i in range(width)]
            )
            for g in range(self.shape.n_groups)
        ]

    def expected(self, x: Sequence[int], bank: int = 0) -> List[int]:
        return self.model.mac_ideal(list(x), bank)
