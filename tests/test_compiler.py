"""Compiler integration: implementation flow, SynDCIM facade, baselines.

These are end-to-end runs on small macros (seconds, not minutes); the
benchmarks exercise the paper-size configurations.
"""

import pytest

from repro.arch import MacroArchitecture
from repro.baselines.arctic import ArcticCompiler
from repro.baselines.autodcim import AutoDCIMCompiler, template_architecture
from repro.baselines.manual import SOTA_MACROS, table2_rows
from repro.compiler.flow import implement
from repro.compiler.report import format_pareto_ascii, format_table
from repro.compiler.syndcim import SynDCIM
from repro.errors import SearchError
from repro.spec import INT4, INT8, MacroSpec


@pytest.fixture(scope="module")
def small16():
    return MacroSpec(
        height=16,
        width=16,
        mcr=2,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=500.0,
    )


@pytest.fixture(scope="module")
def implemented(small16, scl):
    compiler = SynDCIM(scl=scl)
    return compiler.compile(small16)


class TestFlow:
    def test_signoff_clean(self, implemented):
        impl = implemented.implementation
        assert impl is not None
        assert impl.drc.clean
        assert impl.lvs.clean
        assert impl.timing.met
        assert impl.signoff_clean

    def test_post_layout_meets_spec_frequency(self, implemented, small16):
        impl = implemented.implementation
        assert impl.max_frequency_mhz >= small16.mac_frequency_mhz

    def test_artifacts_exported(self, implemented):
        impl = implemented.implementation
        v = impl.verilog()
        assert v.startswith("module")
        g = impl.gds()
        assert '"record": "HEADER"' in g
        assert "implementation of" in impl.report()

    def test_summary_keys(self, implemented):
        s = implemented.implementation.summary()
        for key in (
            "area_um2",
            "max_frequency_mhz",
            "power_mw",
            "energy_per_cycle_pj",
            "congestion",
        ):
            assert key in s and s[key] > 0

    def test_force_reimplement_matches_cached(self, implemented, small16):
        """A forced warm re-implement replays the arena and must agree
        with the memoized implementation bit-for-bit."""
        import numpy as np

        from repro.compiler.flow import ImplementSession

        session = ImplementSession(spec=small16)
        arch = implemented.architecture
        cold = session.implement(arch)
        warm = session.implement(arch, force=True)
        assert warm is not cold
        assert warm.min_period_ns == cold.min_period_ns
        assert warm.timing.wns_ns == cold.timing.wns_ns
        assert warm.power.total_mw == cold.power.total_mw
        assert warm.drc.clean and warm.lvs.clean
        assert np.array_equal(
            warm.placement.cells.coord_arrays()[1],
            cold.placement.cells.coord_arrays()[1],
        )
        # Route reuse hands back the same estimate object so STA's
        # identity-keyed caches stay warm.
        assert warm.routing is cold.routing
        flat, _, _ = session.netlist(arch)
        stats = session._arena.stats(flat, session.library)
        assert stats["place_replays"] >= 1
        assert stats["route_reuses"] >= 1

    def test_estimate_vs_implementation_consistency(self, implemented):
        """LUT estimate and signoff must agree within calibration bands
        (the searcher would otherwise optimize the wrong thing)."""
        est = implemented.selected
        impl = implemented.implementation
        assert impl.min_period_ns <= est.critical_path_ns * 1.45
        assert est.area_um2 / impl.area_um2 < 2.2
        assert impl.area_um2 / est.area_um2 < 2.2


class TestSynDCIM:
    def test_search_only_mode(self, small16, scl):
        result = SynDCIM(scl=scl).compile(small16, implement_design=False)
        assert result.implementation is None
        assert result.frontier

    def test_explicit_choice(self, small16, scl):
        compiler = SynDCIM(scl=scl)
        result = compiler.compile(small16, implement_design=False)
        choice = result.frontier[-1].arch
        chosen = compiler.compile(
            small16, choose=choice, implement_design=False
        )
        assert chosen.selected.arch == choice

    def test_bad_choice_rejected(self, small16, scl):
        compiler = SynDCIM(scl=scl)
        bogus = MacroArchitecture(memcell="DCIM12T", driver_strength=8,
                                  tree_style="rca", column_split=2)
        with pytest.raises(SearchError):
            compiler.compile(small16, choose=bogus, implement_design=False)

    def test_report_text(self, implemented):
        text = implemented.report()
        assert "selected:" in text
        assert "Pareto" in text


class TestBaselines:
    def test_autodcim_uses_fixed_template(self, small16, scl):
        result = AutoDCIMCompiler(scl).compile(small16)
        assert result.estimate.arch == template_architecture(small16)

    def test_syndcim_dominates_autodcim_at_tight_timing(self, scl):
        """The Fig. 8 story: the searched design meets the frequency the
        template cannot."""
        spec = MacroSpec(
            height=64,
            width=64,
            mcr=2,
            input_formats=(INT4, INT8),
            weight_formats=(INT4, INT8),
            mac_frequency_mhz=800.0,
        )
        auto = AutoDCIMCompiler(scl).compile(spec)
        syn = SynDCIM(scl=scl).compile(spec, implement_design=False)
        assert not auto.meets_timing
        assert syn.selected.met

    def test_arctic_fixes_with_pipeline_only(self, scl):
        spec = MacroSpec(
            height=64,
            width=64,
            mcr=2,
            input_formats=(INT4, INT8),
            weight_formats=(INT4, INT8),
            mac_frequency_mhz=800.0,
        )
        result = ArcticCompiler(scl).compile(spec)
        # Never touches the datapath style.
        assert result.estimate.arch.tree_style == "cmp42"
        assert result.estimate.arch.mult_style == "tg_nor"
        if result.meets_timing:
            assert result.pipeline_steps_used > 0

    def test_sota_table_rows(self):
        rows = table2_rows()
        assert len(rows) == len(SOTA_MACROS)
        assert any("TSMC" in str(r[0]) for r in rows)

    def test_1b_normalization(self):
        macro = SOTA_MACROS[0]
        assert macro.tops_per_watt_1b == pytest.approx(
            macro.tops_per_watt * 16
        )


class TestReportHelpers:
    def test_format_table(self):
        text = format_table(
            ["name", "x"], [["a", 1.0], ["long-name", 123.456]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "123.5" in text

    def test_pareto_ascii(self):
        pts = [(1.0, 2.0, 0), (2.0, 1.0, 1)]
        art = format_pareto_ascii(pts, "area", "power")
        assert "o" in art and "*" in art
        assert "area" in art and "power" in art
