"""Behavioural macro model: the two evaluation paths must agree, FP
semantics must track quantized references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import MacroArchitecture
from repro.errors import SimulationError
from repro.sim.functional import DCIMMacroModel, MacCycleTrace
from repro.spec import FP8, INT4, INT8, MacroSpec


def _model(h=8, w=8, mcr=2, fmt=INT4):
    spec = MacroSpec(
        height=h, width=w, mcr=mcr, input_formats=(fmt,), weight_formats=(fmt,)
    )
    return DCIMMacroModel(spec)


class TestWeights:
    def test_int_pack_unpack_roundtrip(self):
        m = _model()
        w = np.array([[3, -4], [7, 0], [-8, 1], [2, 2], [5, -1], [-3, 6], [0, -8], [1, 7]])
        m.set_weights_int(0, w, INT4)
        assert (m.group_weights(0) == w).all()

    def test_sign_extension_into_group(self):
        m = _model()
        w = np.full((8, 2), -1)
        m.set_weights_int(0, w, INT4)
        bits = m.weight_bits(0)
        assert bits.all()  # -1 sign-extends to all ones

    def test_range_check(self):
        m = _model()
        with pytest.raises(SimulationError):
            m.set_weights_int(0, np.full((8, 2), 8), INT4)

    def test_bad_bank(self):
        m = _model()
        with pytest.raises(SimulationError):
            m.set_weights_int(5, np.zeros((8, 2), dtype=int), INT4)

    def test_shape_check(self):
        m = _model()
        with pytest.raises(SimulationError):
            m.set_weights_int(0, np.zeros((4, 2), dtype=int), INT4)

    def test_raw_bits_validated(self):
        m = _model()
        with pytest.raises(SimulationError):
            m.set_weight_bits(0, np.full((8, 8), 2))


class TestMacEquivalence:
    @given(
        x=st.lists(st.integers(-8, 7), min_size=8, max_size=8),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_cycles_equals_ideal_int4(self, x, seed):
        m = _model()
        rng = np.random.default_rng(seed)
        m.set_weights_int(0, rng.integers(-8, 8, size=(8, 2)), INT4)
        assert m.mac_cycles(x) == m.mac_ideal(x)

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=20, deadline=None)
    def test_cycles_equals_ideal_int8(self, seed):
        spec = MacroSpec(
            height=16,
            width=16,
            mcr=1,
            input_formats=(INT8,),
            weight_formats=(INT8,),
        )
        m = DCIMMacroModel(spec)
        rng = np.random.default_rng(seed)
        m.set_weights_int(0, rng.integers(-128, 128, size=(16, 2)), INT8)
        x = [int(v) for v in rng.integers(-128, 128, size=16)]
        assert m.mac_cycles(x) == m.mac_ideal(x)

    def test_trace_records_cycles(self):
        m = _model()
        m.set_weights_int(0, np.ones((8, 2), dtype=int), INT4)
        trace = MacCycleTrace()
        m.mac_cycles([1] * 8, trace=trace)
        assert len(trace.tree_counts) == 4
        assert len(trace.accumulators) == 4
        assert len(trace.fused) == 2

    def test_extremes(self):
        m = _model()
        m.set_weights_int(0, np.full((8, 2), -8), INT4)
        x = [-8] * 8
        assert m.mac_ideal(x) == [(-8) * (-8) * 8] * 2
        assert m.mac_cycles(x) == m.mac_ideal(x)

    def test_input_range_checked(self):
        m = _model()
        m.set_weights_int(0, np.zeros((8, 2), dtype=int), INT4)
        with pytest.raises(SimulationError):
            m.mac_cycles([100] * 8)


class TestFP:
    def test_fp_mac_tracks_quantized_reference(self):
        spec = MacroSpec(
            height=8,
            width=8,
            mcr=1,
            input_formats=(FP8,),
            weight_formats=(FP8,),
        )
        m = DCIMMacroModel(spec)
        rng = np.random.default_rng(3)
        weights = rng.normal(0, 1.0, size=(8, 1))
        m.set_weights_fp(0, weights.tolist(), FP8)
        x = rng.normal(0, 1.0, size=8)
        got = m.mac_fp(x, FP8)[0]
        exact = float(np.dot(x, weights[:, 0]))
        # Quantization + alignment error: bounded by a modest fraction
        # of the operand magnitudes for E4M3.
        scale = np.abs(x).sum() * max(1.0, np.abs(weights).max())
        assert abs(got - exact) < 0.25 * scale + 0.3

    def test_fp_zero_vector(self):
        spec = MacroSpec(
            height=8,
            width=8,
            mcr=1,
            input_formats=(FP8,),
            weight_formats=(FP8,),
        )
        m = DCIMMacroModel(spec)
        m.set_weights_fp(0, [[1.0]] * 8, FP8)
        assert m.mac_fp([0.0] * 8, FP8)[0] == pytest.approx(0.0)

    def test_fp_weights_require_fp_setter(self):
        m = _model(fmt=INT4)
        with pytest.raises(SimulationError):
            m.set_weights_fp(0, [[1.0, 1.0]] * 8, INT4)


class TestSubControls:
    def test_sub_pattern_stage1_only(self):
        m = _model(fmt=INT4)  # group width 4 -> 2 stages
        assert m.sub_controls() == [1, 0]
        m8 = _model(fmt=INT8, w=8)
        assert m8.sub_controls() == [1, 0, 0]
