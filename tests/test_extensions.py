"""Extension features: hybrid ReRAM cells, simultaneous MAC + weight
update, and the command-line interface."""

import numpy as np
import pytest

from repro.arch import MEMCELLS, MacroArchitecture
from repro.cli import main as cli_main
from repro.errors import SimulationError
from repro.sim.functional import DCIMMacroModel
from repro.spec import INT4, MacroSpec


class TestHybridReRAM:
    def test_cell_registered_everywhere(self, library, scl):
        assert "RRAM_HYB" in MEMCELLS
        cell = library.cell("RRAM_HYB")
        assert cell.is_memory
        rec = scl.lookup("memcell", "RRAM_HYB", 1)
        assert rec.area_um2 == pytest.approx(cell.area_um2)

    def test_rram_trades(self, library):
        """Papers [11]-[13]: denser and non-volatile (near-zero leak),
        but the ReRAM read through the SRAM assist is slower/costlier."""
        rram = library.cell("RRAM_HYB")
        sram = library.cell("DCIM6T")
        assert rram.area_um2 < sram.area_um2
        assert rram.leakage_nw < 0.1 * sram.leakage_nw
        assert rram.arcs[0].d0_ns > sram.arcs[0].d0_ns
        assert (
            rram.internal_energy_fj["RD"] > sram.internal_energy_fj["RD"]
        )

    def test_rram_macro_builds_and_places(self, library):
        from repro.layout.drc import run_drc
        from repro.layout.sdp import place_macro
        from repro.rtl.gen.macro import generate_macro_with_array

        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        mod, _ = generate_macro_with_array(
            spec, MacroArchitecture(memcell="RRAM_HYB")
        )
        flat = mod.flatten()
        flat.validate(library)
        placement = place_macro(flat, library)
        assert run_drc(flat, placement, library).clean

    def test_rram_estimate_cuts_leakage(self, scl):
        from repro.search.estimate import estimate_macro

        spec = MacroSpec(height=64, width=64, mcr=4)
        sram = estimate_macro(spec, MacroArchitecture(), scl)
        rram = estimate_macro(
            spec, MacroArchitecture(memcell="RRAM_HYB"), scl
        )
        assert rram.leakage_mw < sram.leakage_mw


class TestSimultaneousUpdate:
    def _model(self):
        spec = MacroSpec(
            height=8, width=8, mcr=2,
            input_formats=(INT4,), weight_formats=(INT4,),
        )
        m = DCIMMacroModel(spec)
        rng = np.random.default_rng(0)
        m.set_weights_int(0, rng.integers(-8, 8, size=(8, 2)), INT4)
        m.set_weights_int(1, rng.integers(-8, 8, size=(8, 2)), INT4)
        return m

    def test_inactive_bank_writes_do_not_disturb(self):
        m = self._model()
        x = [3, -2, 7, 1, -8, 4, 0, 5]
        clean = m.mac_ideal(x, bank=0)
        updates = {
            1: (1, 0, [1] * 8),
            2: (1, 3, [0, 1] * 4),
            3: (1, 7, [1, 0] * 4),
        }
        got = m.mac_with_updates(x, bank=0, updates=updates)
        assert got == clean
        # and the writes actually landed in bank 1
        assert m.weight_bits(1)[0].tolist() == [1] * 8

    def test_active_bank_write_corrupts_faithfully(self):
        m = self._model()
        x = [1] * 8
        clean = m.mac_ideal(x, bank=0)
        got = m.mac_with_updates(
            x, bank=0, updates={1: (0, 0, [1] * 8)}
        )
        # mid-word write to the active bank generally changes the result
        after = m.mac_ideal(x, bank=0)
        assert got != clean or clean == after

    def test_row_write_validation(self):
        m = self._model()
        with pytest.raises(SimulationError):
            m.write_row(0, 99, [0] * 8)
        with pytest.raises(SimulationError):
            m.write_row(0, 0, [0] * 3)
        with pytest.raises(SimulationError):
            m.write_row(0, 0, [2] * 8)


class TestCLI:
    def test_search_command(self, capsys):
        rc = cli_main(
            [
                "search",
                "--height", "32", "--width", "32",
                "--formats", "INT4",
                "--frequency", "300",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Pareto frontier" in out

    def test_search_infeasible_exit_code(self, capsys):
        rc = cli_main(
            [
                "search",
                "--height", "256", "--width", "64",
                "--formats", "INT8",
                "--frequency", "5000",
            ]
        )
        assert rc == 1

    def test_compile_no_implement(self, capsys):
        rc = cli_main(
            [
                "compile",
                "--height", "32", "--width", "32",
                "--formats", "INT4",
                "--frequency", "400",
                "--ppa", "energy",
                "--no-implement",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "selected:" in out

    def test_compile_writes_artifacts(self, tmp_path, capsys):
        v = tmp_path / "m.v"
        g = tmp_path / "m.gds.json"
        rc = cli_main(
            [
                "compile",
                "--height", "16", "--width", "16",
                "--formats", "INT4",
                "--frequency", "400",
                "--verilog", str(v),
                "--gds", str(g),
            ]
        )
        assert rc == 0
        assert v.read_text().startswith("module")
        assert '"record": "HEADER"' in g.read_text()

    def test_error_path(self, capsys):
        rc = cli_main(
            ["search", "--height", "48", "--width", "32"]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err
