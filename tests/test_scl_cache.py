"""Persistent subcircuit-library cache semantics.

The contract under test (see ``docs/performance.md``):

* the cache key is a stable content hash — identical across processes,
  different as soon as the cell library or the builder grids change;
* a cached artifact reloads record-for-record identical to the library
  that produced it;
* corruption in any form degrades to a fresh build, never to an error
  or a wrong library;
* the ``REPRO_SCL_CACHE`` escape hatches work.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.scl.builder import build_default_scl
from repro.scl.cache import (
    SCL_CACHE_SCHEMA,
    load_cached_scl,
    scl_cache_corruption_count,
    scl_cache_dir,
    scl_cache_enabled,
    scl_cache_key,
    store_cached_scl,
)
from repro.scl.library import KINDS, SubcircuitLibrary, default_scl
from repro.scl.lut import PPARecord
from repro.tech.process import GENERIC_40NM, Process
from repro.tech.stdcells import Cell, StdCellLibrary, TimingArc, default_library


def _records(scl: SubcircuitLibrary) -> dict:
    return {kind: dict(scl.table(kind).items()) for kind in KINDS}


def _tiny_scl(library=None, process=None) -> SubcircuitLibrary:
    """Handcrafted sealed library exercising awkward float values."""
    scl = SubcircuitLibrary(
        process=process or GENERIC_40NM,
        cell_library=library or default_library(),
    )
    scl.table("adder_tree").add(
        "cmp42-fa0-r",
        8,
        PPARecord(0.1234567890123456, 1.1e-17, 100.0, 3.0000000000000004e-3),
    )
    scl.table("adder_tree").add(
        "cmp42-fa0-r",
        16,
        PPARecord(0.25, 2.5, 200.125, 0.004, cells=40),
    )
    scl.table("ofu").add(
        "c4-rpl",
        16,
        PPARecord(0.5, 3.0, 300.0, 0.006, cells=77,
                  stage_delays_ns=(0.21, 0.42000000000000004)),
    )
    scl.table("memcell").add("DCIM6T", 1, PPARecord(0.03, 0.2, 1.05, 4.5e-7))
    scl.seal()
    return scl


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCL_CACHE", str(tmp_path))
    return tmp_path


class TestCacheKey:
    def test_stable_within_process(self, library, process, cache_dir):
        assert scl_cache_key(library, process) == scl_cache_key(
            library, process
        )

    def test_stable_across_processes(self, library, process, cache_dir):
        """Hash stability is what makes the artifact shareable between
        CLI runs, pytest sessions and batch workers."""
        import os
        import pathlib

        import repro

        code = (
            "from repro.scl.cache import scl_cache_key;"
            "from repro.tech.stdcells import default_library;"
            "from repro.tech.process import GENERIC_40NM;"
            "print(scl_cache_key(default_library(), GENERIC_40NM))"
        )
        env = dict(os.environ)
        pkg_root = str(pathlib.Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        keys = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            ).stdout.strip()
            for _ in range(2)
        }
        assert keys == {scl_cache_key(library, process)}

    def test_changes_with_cell_library(self, library, process):
        extra = StdCellLibrary(
            {name: library.cell(name) for name in library.names}
        )
        extra.add(
            Cell(
                name="XCELL",
                area_um2=1.0,
                input_caps_ff={"A": 1.0},
                outputs=("Y",),
                arcs=(TimingArc("A", "Y", 0.01, 1.0),),
                leakage_nw=1.0,
                internal_energy_fj={"Y": 0.1},
            )
        )
        assert scl_cache_key(extra, process) != scl_cache_key(
            library, process
        )

    def test_changes_with_cell_parameters(self, library, process):
        cells = {name: library.cell(name) for name in library.names}
        inv = cells["INV_X1"]
        cells["INV_X1"] = replace(inv, leakage_nw=inv.leakage_nw * 2)
        assert scl_cache_key(
            StdCellLibrary(cells), process
        ) != scl_cache_key(library, process)

    def test_changes_with_process(self, library, process):
        other = Process(name="other28", vdd_nominal=0.8)
        assert scl_cache_key(library, other) != scl_cache_key(
            library, process
        )

    def test_changes_with_builder_grids(self, library, process, monkeypatch):
        import repro.scl.builder as builder

        before = scl_cache_key(library, process)
        monkeypatch.setattr(builder, "TREE_SIZES", (8, 16))
        assert scl_cache_key(library, process) != before

    def test_changes_with_char_port_stats(self, library, process, monkeypatch):
        import repro.scl.builder as builder

        before = scl_cache_key(library, process)
        monkeypatch.setattr(
            builder, "CHAR_PORT_STATS", (("in[", (0.3, 0.3)),)
        )
        assert scl_cache_key(library, process) != before


class TestRoundTrip:
    def test_store_then_load_identical(self, cache_dir, library, process):
        scl = _tiny_scl(library, process)
        path = store_cached_scl(scl)
        assert path is not None and path.is_file()
        loaded = load_cached_scl(library, process)
        assert loaded is not None
        assert loaded.sealed
        assert loaded.entry_count() == scl.entry_count()
        # Record-for-record, bit-for-bit: frozen dataclass equality is
        # exact float equality.
        assert _records(loaded) == _records(scl)

    def test_default_scl_round_trip_identical(self, cache_dir, scl):
        """The real 261-record default library survives the disk
        round-trip without losing a single ulp."""
        path = store_cached_scl(scl)
        assert path is not None
        loaded = load_cached_scl(scl.cell_library, scl.process)
        assert loaded is not None
        assert loaded.entry_count() == scl.entry_count()
        assert _records(loaded) == _records(scl)

    def test_missing_artifact_is_a_miss(self, cache_dir, library, process):
        assert load_cached_scl(library, process) is None


class TestCorruption:
    def _stored_path(self, library, process):
        scl = _tiny_scl(library, process)
        path = store_cached_scl(scl)
        assert path is not None
        return path

    def test_truncated_artifact(self, cache_dir, library, process):
        path = self._stored_path(library, process)
        path.write_text(path.read_text()[: 40])
        assert load_cached_scl(library, process) is None

    def test_garbage_artifact(self, cache_dir, library, process):
        path = self._stored_path(library, process)
        path.write_text("not json at all {{{")
        assert load_cached_scl(library, process) is None

    def test_wrong_schema(self, cache_dir, library, process):
        path = self._stored_path(library, process)
        payload = json.loads(path.read_text())
        payload["schema"] = SCL_CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert load_cached_scl(library, process) is None

    def test_wrong_key(self, cache_dir, library, process):
        path = self._stored_path(library, process)
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert load_cached_scl(library, process) is None

    def test_missing_table(self, cache_dir, library, process):
        path = self._stored_path(library, process)
        payload = json.loads(path.read_text())
        del payload["tables"]["memcell"]
        path.write_text(json.dumps(payload))
        assert load_cached_scl(library, process) is None

    def test_wrong_entry_count(self, cache_dir, library, process):
        path = self._stored_path(library, process)
        payload = json.loads(path.read_text())
        payload["entry_count"] = 999
        path.write_text(json.dumps(payload))
        assert load_cached_scl(library, process) is None

    def test_corruption_warns_once_and_counts(
        self, cache_dir, library, process, capsys, monkeypatch
    ):
        """A present-but-unusable artifact is not silent: exactly one
        stderr warning line per artifact, and the corruption counter
        climbs so CI logs surface cache churn."""
        import repro.scl.cache as cache_mod

        # The seen-key set is process-global; earlier corruption tests
        # may already have burned this library's key.
        monkeypatch.setattr(cache_mod, "_CORRUPT_KEYS", set())
        before = scl_cache_corruption_count()
        path = self._stored_path(library, process)
        path.write_text("not json at all {{{")
        capsys.readouterr()
        assert load_cached_scl(library, process) is None
        err = capsys.readouterr().err
        assert err.count("corrupt or stale") == 1
        assert path.name.split(".")[0] in err
        assert scl_cache_corruption_count() == before + 1
        # Repeated lookups of the same bad artifact stay quiet.
        assert load_cached_scl(library, process) is None
        assert capsys.readouterr().err == ""
        assert scl_cache_corruption_count() == before + 1

    def test_plain_miss_is_silent(
        self, cache_dir, library, process, capsys
    ):
        before = scl_cache_corruption_count()
        capsys.readouterr()
        assert load_cached_scl(library, process) is None
        assert capsys.readouterr().err == ""
        assert scl_cache_corruption_count() == before

    def test_corrupted_artifact_falls_back_to_build(
        self, cache_dir, library, process, monkeypatch
    ):
        """default_scl() must survive a corrupt artifact: rebuild fresh
        and overwrite, never crash or serve garbage."""
        import repro.scl.library as lib_mod

        path = self._stored_path(library, process)
        path.write_text('{"truncated": ')
        calls = {"built": 0}
        tiny = _tiny_scl(library, process)

        def fake_build(*args, **kwargs):
            calls["built"] += 1
            return tiny

        monkeypatch.setattr(
            "repro.scl.builder.build_default_scl", fake_build
        )
        monkeypatch.setattr(lib_mod, "_CACHE", {})
        monkeypatch.setattr(lib_mod, "_SOURCE", {})
        scl = default_scl(process)
        assert calls["built"] == 1
        assert scl is tiny
        assert lib_mod.default_scl_source(process) == "built"
        # ... and the rebuild repaired the artifact on disk.
        reloaded = load_cached_scl(library, process)
        assert reloaded is not None
        assert _records(reloaded) == _records(tiny)


class TestEscapeHatches:
    def test_env_off_disables(self, monkeypatch, library, process):
        for value in ("off", "0", "false", "no", "disabled", "OFF"):
            monkeypatch.setenv("REPRO_SCL_CACHE", value)
            assert not scl_cache_enabled()
            assert store_cached_scl(_tiny_scl(library, process)) is None
            assert load_cached_scl(library, process) is None

    def test_env_path_overrides_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCL_CACHE", str(tmp_path / "here"))
        assert scl_cache_enabled()
        assert scl_cache_dir() == tmp_path / "here"

    def test_repro_cache_dir_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SCL_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert scl_cache_dir() == tmp_path / "scl"

    def test_cli_flag_sets_env(self, monkeypatch):
        import repro.cli as cli

        monkeypatch.delenv("REPRO_SCL_CACHE", raising=False)
        seen = {}

        def fake_dispatch(args):
            import os

            seen["env"] = os.environ.get("REPRO_SCL_CACHE")
            return 0

        monkeypatch.setattr(cli, "_dispatch", fake_dispatch)
        assert cli.main(["--no-scl-cache", "search", "--height", "8"]) == 0
        assert seen["env"] == "off"


class TestDefaultSclIntegration:
    def test_second_resolution_loads_from_disk(
        self, cache_dir, library, process, monkeypatch
    ):
        import repro.scl.library as lib_mod

        tiny = _tiny_scl(library, process)
        monkeypatch.setattr(
            "repro.scl.builder.build_default_scl", lambda *a, **k: tiny
        )
        monkeypatch.setattr(lib_mod, "_CACHE", {})
        monkeypatch.setattr(lib_mod, "_SOURCE", {})
        first = default_scl(process)
        assert lib_mod.default_scl_source(process) == "built"
        assert first is tiny

        # New "process": clear the in-memory cache; the disk artifact
        # must satisfy the request without calling the builder.
        monkeypatch.setattr(
            "repro.scl.builder.build_default_scl",
            lambda *a, **k: pytest.fail("builder called despite artifact"),
        )
        monkeypatch.setattr(lib_mod, "_CACHE", {})
        monkeypatch.setattr(lib_mod, "_SOURCE", {})
        second = default_scl(process)
        assert lib_mod.default_scl_source(process) == "disk"
        assert _records(second) == _records(tiny)
