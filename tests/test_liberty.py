"""Liberty (.lib) interchange: the lossless round-trip contract.

Property-style tests generate random cell libraries from named seeds —
every assertion message carries the seed, so a failure reproduces from
the log alone.  The core invariant is the fixed point

    export -> import -> export  ==  export

(byte-identical text), which holds because every float is emitted with
``repr`` and the importer reconstructs exactly the fields the exporter
consumed.  A hand-written golden fixture (``tests/data/golden.lib``)
covers the classic-Liberty idioms our writer never produces — comments,
postfix negation, table-only timing arcs — and is driven end-to-end
through STA, power estimation and gate-level evaluation.
"""

from __future__ import annotations

import itertools
import random
from pathlib import Path

import pytest

from repro.errors import LibraryError
from repro.power.estimator import estimate_power
from repro.rtl.ir import NetlistBuilder
from repro.scl.cache import cell_fingerprint
from repro.sta.analysis import analyze, minimum_period_ns
from repro.tech.characterization import SLEW_SENSITIVITY
from repro.tech.liberty import (
    compile_functions,
    export_liberty,
    library_from_liberty,
    parse_liberty,
    parse_liberty_cells,
    read_liberty_library,
)
from repro.tech.process import GENERIC_40NM
from repro.tech.stdcells import (
    Cell,
    StdCellLibrary,
    TimingArc,
    default_library,
)

BASE_SEED = 0x11B
GOLDEN = Path(__file__).parent / "data" / "golden.lib"


# ---------------------------------------------------------------------------
# Random library generation.
# ---------------------------------------------------------------------------

_VTS = ("svt", "hvt", "lvt", "ulvt")
_OPS = ("&", "|", "^")


def _random_expr(rng: random.Random, pins) -> str:
    expr = pins[0]
    for pin in pins[1:]:
        expr = f"({expr} {rng.choice(_OPS)} {pin})"
        if rng.random() < 0.3:
            expr = f"!{expr}"
    return expr


def _random_comb_cell(rng: random.Random, name: str) -> Cell:
    pins = tuple(f"I{k}" for k in range(rng.randint(1, 4)))
    fns = {"Y": _random_expr(rng, list(pins))}
    height = 1.8
    area = round(rng.uniform(0.5, 6.0), 4)
    return Cell(
        name=name,
        area_um2=area,
        input_caps_ff={p: round(rng.uniform(0.4, 3.0), 4) for p in pins},
        outputs=("Y",),
        arcs=tuple(
            TimingArc(p, "Y", rng.uniform(0.01, 0.08), rng.uniform(0.5, 4.0))
            for p in pins
        ),
        leakage_nw=rng.uniform(0.1, 30.0),
        internal_energy_fj={"Y": rng.uniform(0.2, 5.0)},
        function=compile_functions(fns),
        width_um=area / height,
        height_um=height,
        tags=("gen", "logic") if rng.random() < 0.5 else (),
        vt=rng.choice(_VTS),
        drive=rng.choice((1, 2, 4, 8)),
        pin_functions=fns,
    )


def _random_dff_cell(rng: random.Random, name: str) -> Cell:
    height = 1.8
    area = round(rng.uniform(3.0, 9.0), 4)
    return Cell(
        name=name,
        area_um2=area,
        input_caps_ff={
            "CK": round(rng.uniform(0.5, 1.5), 4),
            "D": round(rng.uniform(0.5, 2.0), 4),
        },
        outputs=("Q",),
        arcs=(TimingArc("CK", "Q", rng.uniform(0.08, 0.2), rng.uniform(1.0, 3.0)),),
        leakage_nw=rng.uniform(1.0, 10.0),
        internal_energy_fj={"Q": rng.uniform(1.0, 8.0)},
        is_sequential=True,
        clk_pin="CK",
        clk_to_q_ns=rng.uniform(0.08, 0.2),
        setup_ns=rng.uniform(0.02, 0.08),
        hold_ns=rng.uniform(0.0, 0.03),
        width_um=area / height,
        height_um=height,
        vt=rng.choice(_VTS),
        drive=rng.choice((1, 2)),
    )


def _random_library(seed: int) -> StdCellLibrary:
    rng = random.Random(seed)
    cells = {}
    for i in range(rng.randint(3, 7)):
        cell = _random_comb_cell(rng, f"GEN{i}_X{rng.choice((1, 2, 4))}")
        cells[cell.name] = cell
    dff = _random_dff_cell(rng, "GENFF_X1")
    cells[dff.name] = dff
    return StdCellLibrary(cells)


def _fingerprints(library: StdCellLibrary) -> dict:
    return {c.name: cell_fingerprint(c) for c in library}


# ---------------------------------------------------------------------------
# Property-based round trips.
# ---------------------------------------------------------------------------


class TestRoundTripFixedPoint:
    @pytest.mark.parametrize("trial", range(6))
    def test_export_import_export_idempotent(self, trial):
        seed = BASE_SEED + 17 * trial
        library = _random_library(seed)
        first = export_liberty(library, GENERIC_40NM)
        imported = library_from_liberty(first)
        second = export_liberty(imported, GENERIC_40NM)
        assert first == second, f"export not a fixed point (seed={seed})"

    @pytest.mark.parametrize("trial", range(6))
    def test_import_reproduces_every_field(self, trial):
        seed = BASE_SEED + 31 * trial
        library = _random_library(seed)
        imported = library_from_liberty(export_liberty(library, GENERIC_40NM))
        assert set(imported.names) == set(library.names), f"seed={seed}"
        want = _fingerprints(library)
        got = _fingerprints(imported)
        for name in want:
            assert got[name] == want[name], (
                f"cell {name} changed across the round trip (seed={seed})"
            )

    @pytest.mark.parametrize("trial", range(4))
    def test_functions_survive(self, trial):
        seed = BASE_SEED + 53 * trial
        rng = random.Random(seed)
        library = _random_library(seed)
        imported = library_from_liberty(export_liberty(library, GENERIC_40NM))
        for cell in library:
            if cell.function is None:
                continue
            twin = imported.cell(cell.name)
            for _ in range(8):
                pins = {p: rng.randint(0, 1) for p in cell.inputs}
                assert twin.evaluate(pins) == cell.evaluate(pins), (
                    f"{cell.name} function drifted on {pins} (seed={seed})"
                )

    def test_header_fields_round_trip(self):
        seed = BASE_SEED
        library = _random_library(seed)
        text = export_liberty(library, GENERIC_40NM, name="roundtrip")
        parsed = parse_liberty_cells(text)
        assert parsed.name == "roundtrip", f"seed={seed}"
        assert parsed.nom_voltage == GENERIC_40NM.vdd_nominal, f"seed={seed}"

    def test_read_from_file(self, tmp_path):
        seed = BASE_SEED + 7
        library = _random_library(seed)
        path = tmp_path / "lib.lib"
        path.write_text(export_liberty(library, GENERIC_40NM))
        imported = read_liberty_library(path)
        assert _fingerprints(imported) == _fingerprints(library), f"seed={seed}"


class TestDefaultLibraryRoundTrip:
    def test_full_library_fixed_point(self):
        library = default_library()
        first = export_liberty(library, GENERIC_40NM)
        imported = library_from_liberty(first)
        assert export_liberty(imported, GENERIC_40NM) == first
        assert _fingerprints(imported) == _fingerprints(library)

    def test_summary_view(self):
        library = default_library()
        summary = parse_liberty(export_liberty(library, GENERIC_40NM))
        assert set(summary) == set(library.names)
        inv = library.cell("INV_X1")
        assert summary["INV_X1"]["area"] == inv.area_um2
        assert summary["INV_X1"]["leakage"] == inv.leakage_nw
        assert summary["INV_X1"]["pin_caps"] == dict(inv.input_caps_ff)


class TestParserErrors:
    def test_unbalanced_braces(self):
        with pytest.raises(LibraryError, match="unbalanced"):
            parse_liberty_cells("library (x) { cell (A) {")

    def test_no_library_group(self):
        with pytest.raises(LibraryError, match="no library group"):
            parse_liberty_cells("cell (A) { }")

    def test_no_cells(self):
        with pytest.raises(LibraryError, match="no cells"):
            parse_liberty_cells("library (x) { }")

    def test_duplicate_cell(self):
        text = (
            "library (x) { cell (A) { area : 1.0; } "
            "cell (A) { area : 2.0; } }"
        )
        with pytest.raises(LibraryError, match="duplicate cell"):
            parse_liberty_cells(text)

    def test_bad_function_expression(self):
        text = (
            'library (x) { cell (A) { pin (Y) { direction : output; '
            'function : "(A & B"; } } }'
        )
        with pytest.raises(LibraryError):
            parse_liberty_cells(text)

    def test_timing_without_related_pin(self):
        text = (
            "library (x) { cell (A) { pin (Y) { direction : output; "
            "timing () { intrinsic_rise : 0.1; } } } }"
        )
        with pytest.raises(LibraryError, match="related_pin"):
            parse_liberty_cells(text)


# ---------------------------------------------------------------------------
# Golden fixture: classic Liberty, end-to-end.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden():
    return read_liberty_library(GOLDEN)


class TestGoldenFixture:
    def test_cells_present(self, golden):
        assert set(golden.names) == {
            "GINV_X1", "GNAND2_X1", "GBUF_X2", "GDFF_X1",
        }

    def test_attributes(self, golden):
        inv = golden.cell("GINV_X1")
        assert inv.area_um2 == 1.2
        assert inv.leakage_nw == 0.8
        assert inv.vt == "svt"  # no threshold_voltage_group attribute
        nand = golden.cell("GNAND2_X1")
        assert nand.vt == "hvt"
        assert nand.drive == 1
        buf = golden.cell("GBUF_X2")
        assert buf.drive == 2

    def test_table_only_arc_refit(self, golden):
        """The GINV_X1 arc carries only an NLDM table; the linear model
        is recovered from its corners (constructed for d0=0.03, r=2.0,
        with SLEW_SENSITIVITY * slew baked into the first row)."""
        arc = golden.cell("GINV_X1").arc("A", "Y")
        assert arc.r_kohm == pytest.approx(2.0)
        assert arc.d0_ns == pytest.approx(
            0.037 - 2.0e-3 - SLEW_SENSITIVITY * 0.02
        )

    def test_postfix_negation_functions(self, golden):
        inv = golden.cell("GINV_X1")
        nand = golden.cell("GNAND2_X1")
        for a, b in itertools.product((0, 1), repeat=2):
            assert inv.evaluate({"A": a}) == {"Y": 1 - a}
            assert nand.evaluate({"A": a, "B": b}) == {"Y": 1 - (a & b)}

    def test_sequential_reconstruction(self, golden):
        dff = golden.cell("GDFF_X1")
        assert dff.is_sequential
        assert dff.clk_pin == "CK"
        assert dff.setup_ns == 0.05
        assert dff.hold_ns == 0.02
        # No repro_clk_to_q_ns extension: falls back to the CK->Q arc.
        assert dff.clk_to_q_ns == 0.12

    def test_golden_round_trips_through_export(self, golden):
        first = export_liberty(golden, GENERIC_40NM, name="golden40")
        imported = library_from_liberty(first)
        assert export_liberty(imported, GENERIC_40NM, name="golden40") == first

    def _pipeline(self):
        """DFF -> NAND2 -> INV -> BUF -> DFF, all golden cells."""
        b = NetlistBuilder("golden_pipe")
        d = b.inputs("d")[0]
        clk = b.inputs("clk")[0]
        q = b.outputs("q")[0]
        b.module.set_clocks([clk])
        s1 = b.net("s1")
        b.cell("GDFF_X1", CK=clk, D=d, Q=s1)
        n1 = b.net("n1")
        b.cell("GNAND2_X1", A=s1, B=s1, Y=n1)
        n2 = b.net("n2")
        b.cell("GINV_X1", A=n1, Y=n2)
        n3 = b.net("n3")
        b.cell("GBUF_X2", A=n2, Y=n3)
        b.cell("GDFF_X1", CK=clk, D=n3, Q=q)
        return b.finish()

    def test_sta_end_to_end(self, golden):
        m = self._pipeline()
        dff = golden.cell("GDFF_X1")
        period = minimum_period_ns(m, golden)
        assert period > dff.clk_to_q_ns + dff.setup_ns
        assert analyze(m, golden, period * 1.01).met
        assert not analyze(m, golden, period * 0.5).met

    def test_power_end_to_end(self, golden):
        m = self._pipeline()
        report = estimate_power(
            m, golden, GENERIC_40NM, frequency_mhz=400.0
        )
        assert report.total_mw > 0.0
