"""Picklable probe functions for the shm pool tests (see test_shm.py).

Lives in its own module so :meth:`repro.batch.engine.BatchCompiler.map`
can ship the function to spawn-started pool workers by qualified name.
Not a test module despite the prefix — it defines no tests.
"""


def scl_source(_item):
    """What the worker's default SCL resolved from ('shm' proves the
    zero-copy attach happened before the first job)."""
    from repro.scl.library import default_scl, default_scl_source

    default_scl()  # resolve if the initializer somehow has not
    return default_scl_source()
