"""Adder-tree generators: functional correctness (including
property-based) and the Fig. 4 structural/PPA orderings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.power.estimator import estimate_power
from repro.rtl.gen.addertree import generate_adder_tree, tree_output_width
from repro.sim.gatesim import GateSimulator
from repro.sta.analysis import minimum_period_ns
from repro.tech.process import GENERIC_40NM
from repro.tech.stdcells import default_library

LIB = default_library()


def _sum_of(sim, width):
    return sum(sim.net(f"sum[{i}]") << i for i in range(width))


def _check_tree(n, style, fa_levels=0, carry_reorder=True, vectors=12):
    mod, stats = generate_adder_tree(n, style, fa_levels, carry_reorder)
    flat = mod.flatten()
    flat.validate(LIB)
    sim = GateSimulator(flat, LIB)
    width = tree_output_width(n)
    import random

    rng = random.Random(n * 1000 + fa_levels)
    for _ in range(vectors):
        bits = [rng.randint(0, 1) for _ in range(n)]
        for i, bit in enumerate(bits):
            sim.set_input(f"in[{i}]", bit)
        sim.evaluate()
        assert _sum_of(sim, width) == sum(bits)
    # Edge vectors: all zeros, all ones.
    for value in (0, 1):
        for i in range(n):
            sim.set_input(f"in[{i}]", value)
        sim.evaluate()
        assert _sum_of(sim, width) == value * n
    return stats


class TestFunctional:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 16, 33, 64])
    def test_cmp42_counts_correctly(self, n):
        _check_tree(n, "cmp42")

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_rca_counts_correctly(self, n):
        _check_tree(n, "rca")

    @pytest.mark.parametrize("fa", [1, 2, 3])
    def test_mixed_counts_correctly(self, fa):
        _check_tree(32, "mixed", fa_levels=fa)

    def test_no_reorder_still_correct(self):
        _check_tree(16, "cmp42", carry_reorder=False)
        _check_tree(16, "mixed", fa_levels=2, carry_reorder=False)

    @settings(max_examples=40, deadline=None)
    @given(bits=st.lists(st.integers(0, 1), min_size=24, max_size=24))
    def test_property_popcount_24(self, bits):
        mod, _ = generate_adder_tree(24, "mixed", fa_levels=1)
        sim = GateSimulator(mod.flatten(), LIB)
        for i, bit in enumerate(bits):
            sim.set_input(f"in[{i}]", bit)
        sim.evaluate()
        assert _sum_of(sim, tree_output_width(24)) == sum(bits)


class TestStructure:
    def test_output_width(self):
        assert tree_output_width(64) == 7
        assert tree_output_width(63) == 6
        assert tree_output_width(2) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(SynthesisError):
            generate_adder_tree(1, "cmp42")
        with pytest.raises(SynthesisError):
            generate_adder_tree(8, "magic")
        with pytest.raises(SynthesisError):
            generate_adder_tree(8, "rca", fa_levels=1)

    def test_cmp42_uses_compressors_mixed_substitutes_fas(self):
        pure = _check_tree(64, "cmp42")
        mixed = _check_tree(64, "mixed", fa_levels=2)
        assert pure.compressors > 0
        assert mixed.compressors < pure.compressors
        assert mixed.full_adders > pure.full_adders

    def test_rca_has_no_compressors(self):
        stats = _check_tree(32, "rca")
        assert stats.compressors == 0
        assert stats.full_adders > 0


class TestFig4Orderings:
    """The Fig. 4 claims on our substrate."""

    @pytest.fixture(scope="class")
    def ppa(self):
        results = {}
        for key, (style, fa) in {
            "rca": ("rca", 0),
            "cmp42": ("cmp42", 0),
            "mixed2": ("mixed", 2),
            "mixed3": ("mixed", 3),
        }.items():
            mod, _ = generate_adder_tree(64, style, fa)
            flat = mod.flatten()
            results[key] = {
                "delay": minimum_period_ns(flat, LIB),
                "area": flat.total_area_um2(LIB),
                "power": estimate_power(
                    flat, LIB, GENERIC_40NM, 800.0
                ).total_mw,
            }
        return results

    def test_compressor_tree_smaller_than_rca(self, ppa):
        assert ppa["cmp42"]["area"] < ppa["rca"]["area"]

    def test_compressor_tree_lower_power_than_rca(self, ppa):
        assert ppa["cmp42"]["power"] < ppa["rca"]["power"]

    def test_mixed_faster_than_pure_compressor(self, ppa):
        assert ppa["mixed3"]["delay"] < ppa["cmp42"]["delay"]

    def test_mixed_pays_area_for_speed(self, ppa):
        assert ppa["mixed3"]["area"] > ppa["cmp42"]["area"]

    def test_carry_reorder_does_not_hurt(self):
        mod_r, _ = generate_adder_tree(64, "cmp42", carry_reorder=True)
        mod_n, _ = generate_adder_tree(64, "cmp42", carry_reorder=False)
        d_r = minimum_period_ns(mod_r.flatten(), LIB)
        d_n = minimum_period_ns(mod_n.flatten(), LIB)
        assert d_r <= d_n + 0.02
