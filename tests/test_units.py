"""Unit-algebra helpers."""

import math

import pytest

from repro import units


def test_period_frequency_roundtrip():
    assert units.period_ns(800.0) == pytest.approx(1.25)
    assert units.frequency_mhz(1.25) == pytest.approx(800.0)
    for f in (1.0, 123.4, 5000.0):
        assert units.frequency_mhz(units.period_ns(f)) == pytest.approx(f)


def test_period_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.period_ns(0.0)
    with pytest.raises(ValueError):
        units.frequency_mhz(-1.0)


def test_switching_energy_cv2():
    # 10 fF at 1 V -> 10 fJ == 0.01 pJ.
    assert units.switching_energy_pj(10.0, 1.0) == pytest.approx(0.01)
    # quadratic in V
    e09 = units.switching_energy_pj(10.0, 0.9)
    e18 = units.switching_energy_pj(10.0, 1.8)
    assert e18 / e09 == pytest.approx(4.0)


def test_dynamic_power():
    # 100 pJ/cycle at 1000 MHz = 100 mW.
    assert units.dynamic_power_mw(100.0, 1000.0) == pytest.approx(100.0)


def test_tops_per_watt():
    # 1024 ops/cycle at 1000 MHz and 1 W -> 1.024 TOPS/W.
    assert units.tops_per_watt(1024, 1000.0, 1000.0) == pytest.approx(1.024)
    with pytest.raises(ValueError):
        units.tops_per_watt(1, 1.0, 0.0)


def test_tops_per_mm2():
    # 2048 ops/cycle @ 500 MHz over 1 mm^2.
    v = units.tops_per_mm2(2048, 500.0, 1e6)
    assert v == pytest.approx(2048 * 500e6 / 1e12)
    with pytest.raises(ValueError):
        units.tops_per_mm2(1, 1.0, 0.0)


def test_power_energy_consistency():
    energy = units.switching_energy_pj(50.0, 0.9)
    power = units.dynamic_power_mw(energy, 800.0)
    assert power == pytest.approx(energy * 0.8, rel=1e-12)
