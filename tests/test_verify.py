"""The verification harness: golden-model equivalence, mutation
catching, and wiring through the flow, records, batch jobs and CLI.

Property-style tests draw random (spec, format, weights, inputs)
combinations from named seeds; every assertion message carries the seed
so a failure is reproducible from the log alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import MacroArchitecture
from repro.batch.engine import BatchCompiler, BatchResult, BatchStats
from repro.batch.jobs import CompileJob
from repro.cli import build_parser, main
from repro.rtl.gen.macro import generate_macro
from repro.sim.formats import int_range
from repro.spec import FP4, FP8, INT4, INT8, MacroSpec
from repro.verify import VecMacroTestbench, verify_macro
from repro.verify.stimuli import (
    directed_input_vectors,
    random_input_vectors,
    random_weight_matrix,
    serial_range,
)

BASE_SEED = 0xDC1


def _spec_for(fmt, rng) -> MacroSpec:
    height = int(rng.choice([4, 8, 16]))
    # width must hold a whole number of weight-bit groups (8 covers
    # every format up to INT8/FP8).
    width = int(rng.choice([8, 16]))
    mcr = int(rng.choice([1, 2]))
    return MacroSpec(
        height=height,
        width=width,
        mcr=mcr,
        input_formats=(fmt,),
        weight_formats=(fmt,),
        mac_frequency_mhz=400.0,
    )


class TestGoldenEquivalence:
    """mac_ideal == mac_cycles == vecsim netlist output, per format."""

    @pytest.mark.parametrize("fmt", [INT4, INT8, FP4, FP8], ids=str)
    @pytest.mark.parametrize("trial", range(3))
    def test_random_draws(self, fmt, trial):
        seed = BASE_SEED + 101 * trial + fmt.bits
        rng = np.random.default_rng(seed)
        spec = _spec_for(fmt, rng)
        tb = VecMacroTestbench(spec, batch=16)
        bank = int(rng.integers(0, spec.mcr))
        weights = random_weight_matrix(
            rng, spec.height, tb.model.n_groups, fmt
        )
        tb.load_weights(bank, weights, fmt)
        xs = random_input_vectors(rng, spec.height, fmt, 16)
        observed = tb.run_mac(xs, bank)
        ideal = tb.expected(xs, bank)
        assert (observed == ideal).all(), (
            f"seed={seed}: netlist != mac_ideal for {fmt.name} on "
            f"{spec.describe()}"
        )
        for lane in (0, 7, 15):
            cycles = tb.model.mac_cycles(list(xs[lane]), bank)
            assert cycles == list(ideal[lane]), (
                f"seed={seed}: mac_cycles != mac_ideal for {fmt.name} "
                f"lane {lane} on {spec.describe()}"
            )

    @pytest.mark.parametrize("fmt", [INT4, FP8], ids=str)
    def test_directed_corners(self, fmt):
        seed = BASE_SEED + fmt.bits
        rng = np.random.default_rng(seed)
        spec = _spec_for(fmt, rng)
        tb = VecMacroTestbench(spec, batch=32)
        weights = random_weight_matrix(
            rng, spec.height, tb.model.n_groups, fmt
        )
        tb.load_weights(0, weights, fmt)
        xs = directed_input_vectors(spec.height, fmt)
        lo, hi = serial_range(fmt)
        assert xs.min() >= lo and xs.max() <= hi
        observed = tb.run_mac(xs, 0)
        assert (observed == tb.expected(xs, 0)).all(), (
            f"seed={seed}: directed corners mismatch for {fmt.name}"
        )

    def test_mixed_format_harness_passes(self):
        spec = MacroSpec(
            height=8,
            width=8,
            mcr=2,
            input_formats=(INT4, FP4),
            weight_formats=(INT4, FP4),
            mac_frequency_mhz=400.0,
        )
        report = verify_macro(spec, vectors=512, seed=11, batch=128)
        assert report.passed, report.describe()
        assert report.vectors_run == 512
        assert report.vectors_per_s > 0
        assert report.to_dict()["first_failure"] is None

    def test_per_lane_banks_match_scalar(self, small_spec):
        """Per-lane bank selection (the coverage-striping mechanism)
        must agree with per-bank scalar runs."""
        rng = np.random.default_rng(BASE_SEED + 9)
        tb = VecMacroTestbench(small_spec, batch=8)
        lo, hi = int_range(small_spec.input_width)
        for bank in range(small_spec.mcr):
            tb.load_weights(
                bank,
                rng.integers(
                    lo, hi + 1,
                    size=(small_spec.height, tb.model.n_groups),
                ),
                INT4,
            )
        xs = rng.integers(lo, hi + 1, size=(8, small_spec.height))
        banks = np.arange(8) % small_spec.mcr
        got = tb.run_mac(xs, banks)
        assert (got == tb.expected(xs, banks)).all()
        for bank in range(small_spec.mcr):
            lanes = np.nonzero(banks == bank)[0]
            per_bank = tb.run_mac(xs[lanes], bank)
            assert (per_bank == got[lanes]).all()

    def test_stimuli_cover_every_format_and_bank(self):
        """A gross fault must surface on *every* (input format, bank)
        pair within a couple of rounds — the lanes are striped across
        both axes each round, so no pair waits for a round the vector
        budget may never reach.  (Round 0's directed bank-0 weights
        are all-zero, which masks this fault there; round 1's nonzero
        patterns expose it.)"""
        spec = MacroSpec(
            height=8,
            width=8,
            mcr=2,
            input_formats=(INT4, INT8),
            weight_formats=(INT4,),
            mac_frequency_mhz=400.0,
        )
        module, shape = generate_macro(spec, MacroArchitecture())
        flat = module.flatten()
        victim = next(i for i in flat.instances if i.ref == "INV_X1")
        victim.ref = "BUF_X2"
        report = verify_macro(
            spec,
            MacroArchitecture(),
            netlist=flat,
            shape=shape,
            vectors=128,
            seed=2,
            batch=64,  # two rounds
            max_records=128,
        )
        assert not report.passed
        seen_formats = {m.input_format for m in report.mismatches}
        seen_banks = {m.bank for m in report.mismatches}
        assert seen_formats == {"INT4", "INT8"}
        assert seen_banks == {0, 1}
        # A batch smaller than the format count must still rotate
        # through every input format over successive rounds.
        tiny = verify_macro(
            spec,
            MacroArchitecture(),
            netlist=flat,
            shape=shape,
            vectors=16,
            seed=2,
            batch=1,
            max_records=32,
        )
        assert {m.input_format for m in tiny.mismatches} == {"INT4", "INT8"}


def _fresh_flat(small_spec):
    module, shape = generate_macro(small_spec, MacroArchitecture())
    return module.flatten(), shape


def _verify_mutant(small_spec, flat, shape):
    return verify_macro(
        small_spec,
        MacroArchitecture(),
        netlist=flat,
        shape=shape,
        vectors=256,
        seed=5,
        batch=128,
    )


class TestMutationCatching:
    """The harness must actually *fail* on a broken netlist."""

    def test_flipped_cell_type(self, small_spec):
        flat, shape = _fresh_flat(small_spec)
        victim = next(i for i in flat.instances if i.ref == "INV_X1")
        victim.ref = "BUF_X2"  # complement becomes a pass-through
        report = _verify_mutant(small_spec, flat, shape)
        assert not report.passed
        first = report.first_failure
        assert first is not None and first.cycle >= 0
        assert 0 <= first.column < shape.n_groups
        assert first.expected != first.observed
        assert "FAIL" in report.describe()

    def test_swapped_connections(self, small_spec):
        flat, shape = _fresh_flat(small_spec)
        victim = next(
            i
            for i in flat.instances
            if i.ref == "FA_X1" and "S" in i.conn and "CO" in i.conn
        )
        victim.conn["S"], victim.conn["CO"] = (
            victim.conn["CO"],
            victim.conn["S"],
        )
        report = _verify_mutant(small_spec, flat, shape)
        assert not report.passed
        assert report.mismatch_count > 0

    def test_stuck_at_zero_net(self, small_spec):
        flat, shape = _fresh_flat(small_spec)
        victim = next(
            i
            for i in flat.instances
            if i.ref == "FA_X1" and "S" in i.conn
        )
        stuck_net = victim.conn["S"]
        victim.conn["S"] = flat.add_net("mut_dangling")
        flat.add_instance("mut_tie", "TIE0", {"Y": stuck_net})
        report = _verify_mutant(small_spec, flat, shape)
        assert not report.passed
        # Mismatch records stay capped but the count is uncapped.
        assert len(report.mismatches) <= 16 <= report.mismatch_count or (
            report.mismatch_count <= 16
            and len(report.mismatches) == report.mismatch_count
        )

    def test_healthy_netlist_passes_same_stimuli(self, small_spec):
        flat, shape = _fresh_flat(small_spec)
        report = _verify_mutant(small_spec, flat, shape)
        assert report.passed, report.describe()


class TestStimuli:
    @pytest.mark.parametrize("fmt", [FP4, FP8], ids=str)
    def test_fp_random_vectors_match_alignment_reference(self, fmt):
        """The vectorized FP draw must equal the scalar
        FPFields/align_group twin draw-for-draw (same rng stream)."""
        from repro.sim.formats import FPFields, align_group

        seed = BASE_SEED + 31
        height, n = 8, 16
        got = random_input_vectors(
            np.random.default_rng(seed), height, fmt, n
        )
        rng = np.random.default_rng(seed)
        signs = rng.integers(0, 2, size=(n, height))
        exps = rng.integers(0, 1 << fmt.exponent, size=(n, height))
        mants = rng.integers(0, 1 << fmt.mantissa, size=(n, height))
        for i in range(n):
            fields = [
                FPFields(
                    sign=int(signs[i, r]),
                    exponent=int(exps[i, r]),
                    mantissa=int(mants[i, r]),
                    fmt=fmt,
                )
                for r in range(height)
            ]
            aligned, _emax = align_group(fields)
            assert list(got[i]) == aligned, f"seed={seed} vector {i}"

    def test_options_default_mirrors_harness_default(self):
        # repro.options keeps the number as a literal so CLI/service
        # startup stays numpy-free; this is the drift guard.
        from repro.options import DEFAULT_VERIFY_VECTORS
        from repro.verify.harness import DEFAULT_VECTORS

        assert DEFAULT_VERIFY_VECTORS == DEFAULT_VECTORS


class TestFlowWiring:
    def test_implement_session_verify_stage(self, small_spec):
        from repro.compiler.flow import ImplementSession

        session = ImplementSession(
            small_spec, verify=True, verify_vectors=256
        )
        impl = session.implement(MacroArchitecture())
        assert impl.verification is not None
        assert impl.verification.vectors_run == 256
        assert impl.verification.passed
        assert impl.verification_clean
        assert "verification PASS" in impl.report()

    def test_implementation_record_carries_verification(self, small_spec):
        from repro.compiler.flow import ImplementSession
        from repro.compiler.syndcim import implementation_record

        session = ImplementSession(
            small_spec, verify=True, verify_vectors=128
        )
        impl = session.implement(MacroArchitecture())
        record = implementation_record(impl)
        assert record["verified"] is True
        assert record["verification"]["vectors_run"] == 128
        assert record["verification"]["passed"] is True
        # Without the stage the fields stay None (not false-positive).
        plain = ImplementSession(small_spec).implement(MacroArchitecture())
        plain_record = implementation_record(plain)
        assert plain_record["verified"] is None
        assert plain_record["verification"] is None

    def test_compile_verifies_final_implementation_once(
        self, scl, small_spec, monkeypatch
    ):
        """SynDCIM.compile(verify=True) attaches exactly one report —
        to the implementation it returns — instead of verifying every
        discarded escalation attempt."""
        import repro.compiler.flow as flow_mod
        from repro.compiler.syndcim import SynDCIM

        calls = []
        real = flow_mod.verify_macro

        def counting_verify(*args, **kwargs):
            calls.append(kwargs.get("vectors"))
            return real(*args, **kwargs)

        monkeypatch.setattr(flow_mod, "verify_macro", counting_verify)
        result = SynDCIM(scl=scl).compile(
            small_spec, verify=True, verify_vectors=128
        )
        impl = result.implementation
        assert impl is not None and impl.verification is not None
        assert impl.verification.passed
        assert impl.verification.vectors_run == 128
        assert len(calls) == 1

    def test_implement_archs_honors_engine_verify(self, scl, small_spec):
        """Engine-level verify applies to implement-only jobs too, not
        just full compiles."""
        engine = BatchCompiler(
            jobs=1, use_cache=False, verify=True, verify_vectors=128
        )
        result = engine.implement_archs(small_spec, [MacroArchitecture()])
        rec = result.records[0]
        assert rec["status"] == "ok"
        assert rec["implementation"]["verified"] is True
        assert rec["implementation"]["verification"]["vectors_run"] == 128

    def test_job_key_covers_verify_options(self, small_spec):
        base = CompileJob(spec=small_spec)
        verified = CompileJob(spec=small_spec, verify=True)
        deeper = CompileJob(
            spec=small_spec, verify=True, verify_vectors=65536
        )
        assert base.key() != verified.key()
        assert verified.key() != deeper.key()
        assert verified.payload()["options"]["verify"] is True
        assert deeper.payload()["options"]["verify_vectors"] == 65536


def _capture_jobs(monkeypatch):
    captured = {}

    def fake_run_jobs(self, jobs):
        captured["engine"] = self
        captured["jobs"] = list(jobs)
        return BatchResult(records=[], stats=BatchStats(total=len(jobs)))

    monkeypatch.setattr(BatchCompiler, "run_jobs", fake_run_jobs)
    return captured


class TestCLI:
    def test_compile_and_batch_parsers_accept_verify(self):
        args = build_parser().parse_args(
            ["compile", "--verify", "--verify-vectors", "512"]
        )
        assert args.verify and args.verify_vectors == 512
        args = build_parser().parse_args(["sweep", "--verify"])
        assert args.verify and args.verify_vectors == 4096
        args = build_parser().parse_args(
            ["batch", "--specs", "x.json", "--verify-vectors", "64"]
        )
        assert not args.verify and args.verify_vectors == 64

    def test_verify_subcommand_parser(self):
        args = build_parser().parse_args(
            ["verify", "--vectors", "1024", "--seed", "3", "--batch", "256"]
        )
        assert args.command == "verify"
        assert args.vectors == 1024 and args.seed == 3 and args.batch == 256

    def test_sweep_forwards_verify_into_jobs(self, monkeypatch, tmp_path):
        captured = _capture_jobs(monkeypatch)
        rc = main(
            [
                "sweep",
                "--height", "8",
                "--width", "8",
                "--formats", "INT4",
                "--verify",
                "--verify-vectors", "256",
                "--output", str(tmp_path / "out.jsonl"),
                "--no-summary",
            ]
        )
        assert rc == 0
        jobs = captured["jobs"]
        assert jobs and all(j.verify for j in jobs)
        assert all(j.verify_vectors == 256 for j in jobs)
        assert captured["engine"].verify is True

    def test_no_verify_means_off(self, monkeypatch, tmp_path):
        captured = _capture_jobs(monkeypatch)
        rc = main(
            [
                "sweep",
                "--height", "8",
                "--formats", "INT4",
                "--output", str(tmp_path / "out.jsonl"),
                "--no-summary",
            ]
        )
        assert rc == 0
        assert all(not j.verify for j in captured["jobs"])

    def test_verify_subcommand_end_to_end(self, scl, capsys):
        rc = main(
            [
                "verify",
                "--height", "8",
                "--width", "8",
                "--formats", "INT4",
                "--frequency", "400",
                "--vectors", "128",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verification PASS" in out
        assert "128 vectors" in out
