"""Subcircuit library: LUT mechanics and characterized orderings."""

import pytest

from repro.errors import LibraryError
from repro.scl.builder import tree_variant
from repro.scl.lut import PPARecord, PPATable, interpolate_records


class TestPPATable:
    def _table(self):
        t = PPATable("demo")
        t.add("v", 8, PPARecord(0.4, 1.0, 100.0, 0.001, cells=10))
        t.add("v", 32, PPARecord(0.8, 4.0, 400.0, 0.004, cells=40))
        return t

    def test_exact_lookup(self):
        t = self._table()
        assert t.lookup("v", 8).delay_ns == pytest.approx(0.4)

    def test_interpolation_midpoint(self):
        t = self._table()
        mid = t.lookup("v", 20)
        assert mid.delay_ns == pytest.approx(0.6)
        assert mid.energy_pj == pytest.approx(2.5)
        assert mid.area_um2 == pytest.approx(250.0)

    def test_extrapolation_above_grid(self):
        t = self._table()
        big = t.lookup("v", 64)
        assert big.energy_pj > 4.0
        assert big.delay_ns > 0.8

    def test_unknown_variant_raises(self):
        t = self._table()
        with pytest.raises(LibraryError):
            t.lookup("nope", 8)

    def test_duplicate_rejected(self):
        t = self._table()
        with pytest.raises(LibraryError):
            t.add("v", 8, PPARecord(0.1, 0.1, 1.0, 0.0))

    def test_single_point_scales_linearly(self):
        t = PPATable("one")
        t.add("v", 10, PPARecord(0.5, 2.0, 50.0, 0.002, cells=5))
        r = t.lookup("v", 20)
        assert r.energy_pj == pytest.approx(4.0)
        assert r.delay_ns == pytest.approx(0.5)  # delay is intensive

    def test_interpolate_records_stage_delays(self):
        a = PPARecord(1.0, 1.0, 1.0, 0.0, stage_delays_ns=(0.2, 0.4))
        b = PPARecord(2.0, 2.0, 2.0, 0.0, stage_delays_ns=(0.4, 0.8))
        mid = interpolate_records(a, b, 0.5)
        assert mid.stage_delays_ns == pytest.approx((0.3, 0.6))


class TestVariantNaming:
    def test_mixed_fa0_degenerates_to_cmp42(self):
        assert tree_variant("mixed", 0, True) == "cmp42-fa0-r"
        assert tree_variant("mixed", 2, False) == "mixed-fa2-n"


class TestBuiltLibrary:
    """Orderings the searcher depends on, measured from the real SCL."""

    def test_entry_counts(self, scl):
        assert scl.entry_count() > 150
        assert "adder_tree" in scl.summary()

    def test_tree_delay_grows_with_inputs(self, scl):
        d = [
            scl.lookup("adder_tree", "cmp42-fa0-r", n).delay_ns
            for n in (8, 32, 128)
        ]
        assert d[0] < d[1] < d[2]

    def test_tree_energy_roughly_linear(self, scl):
        e32 = scl.lookup("adder_tree", "cmp42-fa0-r", 32).energy_pj
        e128 = scl.lookup("adder_tree", "cmp42-fa0-r", 128).energy_pj
        assert 2.0 < e128 / e32 < 8.0

    def test_mixed_faster_than_cmp42_at_64(self, scl):
        mixed = scl.lookup("adder_tree", "mixed-fa3-r", 64)
        pure = scl.lookup("adder_tree", "cmp42-fa0-r", 64)
        assert mixed.delay_ns < pure.delay_ns
        assert mixed.area_um2 >= pure.area_um2

    def test_rca_worst_area_energy(self, scl):
        rca = scl.lookup("adder_tree", "rca-fa0-r", 64)
        pure = scl.lookup("adder_tree", "cmp42-fa0-r", 64)
        assert rca.area_um2 > pure.area_um2
        assert rca.energy_pj > pure.energy_pj

    def test_csel_ofu_faster_bigger(self, scl):
        rpl = scl.lookup("ofu", "c8-rpl", 16)
        cs = scl.lookup("ofu", "c8-csel", 16)
        assert cs.delay_ns < rpl.delay_ns
        assert cs.area_um2 > rpl.area_um2
        assert all(
            c <= r + 1e-9
            for c, r in zip(cs.stage_delays_ns, rpl.stage_delays_ns)
        )

    def test_pg_mux_smallest(self, scl):
        pg = scl.lookup("mult_mux", "pg_1t", 2)
        tg = scl.lookup("mult_mux", "tg_nor", 2)
        assert pg.area_um2 < tg.area_um2
        assert pg.delay_ns > tg.delay_ns

    def test_driver_strength_trades_energy_for_delay(self, scl):
        d2 = scl.lookup("wl_driver", "drv2", 64)
        d8 = scl.lookup("wl_driver", "drv8", 64)
        assert d8.delay_ns < d2.delay_ns
        assert d8.energy_pj > d2.energy_pj

    def test_alignment_grows_with_lanes_and_format(self, scl):
        a8 = scl.lookup("alignment", "FP8", 8)
        a64 = scl.lookup("alignment", "FP8", 64)
        assert a64.area_um2 > 4 * a8.area_um2
        bf = scl.lookup("alignment", "BF16", 64)
        assert bf.area_um2 > a64.area_um2

    def test_memcell_records(self, scl):
        c6 = scl.lookup("memcell", "DCIM6T", 1)
        c8 = scl.lookup("memcell", "DCIM8T", 1)
        c12 = scl.lookup("memcell", "DCIM12T", 1)
        assert c6.area_um2 < c8.area_um2 < c12.area_um2

    def test_sealed_library(self, scl):
        assert scl.sealed
