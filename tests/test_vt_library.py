"""Differential multi-Vt library suite: built vs Liberty-imported.

Extends the ``tests/test_vector_kernels.py`` pattern — prove a second
path (here: the library re-imported from its own Liberty export)
against the reference implementation on identical inputs, with exact
equality, not tolerances.  Because the SCL disk cache is content
addressed, field-identical cells hash to the *same* cache key, so the
imported backend resolves to the same characterized artifact — the
strongest possible "bit for bit" statement.

Also pins the scaling laws of the Vt/drive grid and the acceptance
criterion that the ``vt="auto"`` search reaches strictly lower leakage
than the single-Vt baseline.
"""

from __future__ import annotations

import itertools

import pytest

from repro.arch import MacroArchitecture
from repro.power.estimator import estimate_power
from repro.rtl.gen.addertree import generate_adder_tree
from repro.scl.cache import cell_fingerprint, scl_cache_key
from repro.search.algorithm import MSOSearcher
from repro.search.estimate import estimate_macro
from repro.sta.analysis import minimum_period_ns
from repro.synth import swap_vt
from repro.tech.liberty import export_liberty, library_from_liberty
from repro.tech.stdcells import (
    DRIVE_LADDER,
    VT_FLAVORS,
    VT_ORDER,
    default_library,
    parse_variant_name,
    single_vt_library,
    variant_name,
)


@pytest.fixture(scope="module")
def imported(process):
    """The default library after one Liberty export/import cycle."""
    return library_from_liberty(export_liberty(default_library(), process))


def _flat_tree(n_inputs: int):
    module, _ = generate_adder_tree(n_inputs)
    return module.flatten()


class TestImportedLibraryIdentity:
    def test_same_cell_set(self, library, imported):
        assert set(imported.names) == set(library.names)

    def test_every_variant_field_identical(self, library, imported):
        """area, caps, arcs, leakage, energy, geometry, (vt, drive) and
        the truth table — byte-identical for all 279 cells."""
        for cell in library:
            assert cell_fingerprint(imported.cell(cell.name)) == (
                cell_fingerprint(cell)
            ), f"cell {cell.name} drifted across the Liberty round trip"

    def test_scl_cache_key_identical(self, library, imported, process):
        """Field-identical cells hash to the same SCL artifact: the
        imported backend characterizes to the same library bit for bit."""
        assert scl_cache_key(imported, process) == (
            scl_cache_key(library, process)
        )

    def test_sta_identical_per_flavor(self, library, imported):
        """Netlist STA under the imported library matches exactly, at
        every flavor the swap pass can produce."""
        for vt in VT_ORDER:
            flat = _flat_tree(8)
            swap_vt(flat, library, vt)
            assert minimum_period_ns(flat, imported) == (
                minimum_period_ns(flat, library)
            ), f"minimum period drifted at vt={vt}"

    def test_power_identical(self, library, imported, process):
        flat = _flat_tree(8)
        built = estimate_power(flat, library, process, frequency_mhz=400.0)
        twin = estimate_power(flat, imported, process, frequency_mhz=400.0)
        assert twin.total_mw == built.total_mw
        assert twin.leakage_mw == built.leakage_mw


class TestScalingLaws:
    def test_leakage_and_delay_orderings(self, library):
        """At every populated (base, drive) grid point: delay strictly
        increases and leakage strictly decreases toward hvt."""
        grid = {}
        for cell in library:
            parsed = parse_variant_name(cell.name)
            if parsed is not None:
                grid.setdefault((parsed[0], parsed[2]), {})[parsed[1]] = cell
        checked = 0
        for (base, drive), flavors in grid.items():
            present = [vt for vt in VT_ORDER if vt in flavors]
            for slow_vt, fast_vt in zip(present, present[1:]):
                slow, fast = flavors[slow_vt], flavors[fast_vt]
                assert slow.leakage_nw < fast.leakage_nw, (base, drive)
                if slow.arcs and fast.arcs:
                    assert max(a.d0_ns for a in slow.arcs) > (
                        max(a.d0_ns for a in fast.arcs)
                    ), (base, drive)
                checked += 1
        assert checked > 100

    def test_drive_ladder_tops_out_at_x12(self, library):
        drives = sorted(
            {
                parse_variant_name(c.name)[2]
                for c in library
                if parse_variant_name(c.name) is not None
            }
        )
        assert max(drives) == 12
        assert tuple(DRIVE_LADDER) == (1, 2, 4, 6, 8, 12)
        # The whole ladder exists for the core families.
        for base, drive in itertools.product(("INV", "NAND2"), DRIVE_LADDER):
            assert variant_name(base, "svt", drive) in library
            assert variant_name(base, "hvt", drive) in library

    def test_area_and_cap_scale_with_drive(self, library):
        for a, b in zip(DRIVE_LADDER, DRIVE_LADDER[1:]):
            small = library.cell(variant_name("INV", "svt", a))
            big = library.cell(variant_name("INV", "svt", b))
            assert big.area_um2 > small.area_um2
            assert big.input_caps_ff["A"] > small.input_caps_ff["A"]
            # wider devices drive harder
            assert big.arcs[0].r_kohm < small.arcs[0].r_kohm

    def test_single_vt_view_is_svt_only(self):
        single = single_vt_library()
        full = default_library()
        assert len(single) < len(full)
        for cell in single:
            assert cell.vt == "svt", cell.name


class TestEstimatorVtPricing:
    def _estimate(self, small_spec, scl, vt):
        return estimate_macro(
            small_spec, MacroArchitecture(vt=vt), scl
        )

    def test_delay_ordering(self, small_spec, scl):
        crit = {
            vt: self._estimate(small_spec, scl, vt).critical_path_ns
            for vt in VT_FLAVORS
        }
        assert crit["ulvt"] < crit["lvt"] < crit["svt"] < crit["hvt"]

    def test_leakage_ordering(self, small_spec, scl):
        leak = {
            vt: self._estimate(small_spec, scl, vt).leakage_mw
            for vt in VT_FLAVORS
        }
        assert leak["hvt"] < leak["svt"] < leak["lvt"] < leak["ulvt"]

    def test_svt_is_the_identity_flavor(self, small_spec, scl):
        base = estimate_macro(small_spec, MacroArchitecture(), scl)
        svt = self._estimate(small_spec, scl, "svt")
        assert svt.critical_path_ns == base.critical_path_ns
        assert svt.leakage_mw == base.leakage_mw


class TestVtAutoSearch:
    def test_auto_reaches_strictly_lower_leakage(self, small_spec, scl):
        """The acceptance criterion: vt=auto must find a corner of the
        frontier with strictly lower leakage than any single-Vt
        baseline point."""
        baseline = MSOSearcher(scl=scl).search(small_spec)
        auto = MSOSearcher(scl=scl, vt="auto").search(small_spec)
        assert baseline.frontier and auto.frontier
        base_leak = min(e.leakage_mw for e in baseline.frontier)
        auto_leak = min(e.leakage_mw for e in auto.frontier)
        assert auto_leak < base_leak
        # ... and the low-leakage points still meet timing.
        best = min(auto.frontier, key=lambda e: e.leakage_mw)
        assert best.met

    def test_fixed_flavor_pins_every_candidate(self, small_spec, scl):
        result = MSOSearcher(scl=scl, vt="hvt").search(small_spec)
        assert result.frontier
        for est in result.candidates:
            assert est.arch.vt == "hvt"

    def test_bad_flavor_rejected(self, scl):
        from repro.errors import SearchError

        with pytest.raises(SearchError, match="vt must be"):
            MSOSearcher(scl=scl, vt="fast")
