"""Architecture knobs and design-space enumeration."""

import pytest

from repro.arch import (
    MacroArchitecture,
    architecture_space,
    default_architecture,
)
from repro.errors import SpecificationError
from repro.spec import INT4, MacroSpec


def test_default_architecture_is_valid():
    arch = MacroArchitecture()
    arch.validate_against(MacroSpec())


def test_oai22_limited_to_mcr2():
    arch = MacroArchitecture(mult_style="oai22")
    arch.validate_against(MacroSpec(mcr=2))
    with pytest.raises(SpecificationError):
        arch.validate_against(MacroSpec(mcr=4))


def test_column_split_floor():
    spec = MacroSpec(height=8, width=8)
    with pytest.raises(SpecificationError):
        MacroArchitecture(column_split=4).validate_against(spec)
    MacroArchitecture(column_split=2).validate_against(spec)


def test_fa_levels_only_for_mixed():
    with pytest.raises(SpecificationError):
        MacroArchitecture(tree_style="rca", tree_fa_levels=2)


def test_invalid_knob_values():
    with pytest.raises(SpecificationError):
        MacroArchitecture(memcell="SRAM4T")
    with pytest.raises(SpecificationError):
        MacroArchitecture(column_split=3)
    with pytest.raises(SpecificationError):
        MacroArchitecture(driver_strength=16)
    with pytest.raises(SpecificationError):
        MacroArchitecture(ofu_pipeline=5)


def test_replace_is_functional():
    a = MacroArchitecture()
    b = a.replace(ofu_csel=True)
    assert b.ofu_csel and not a.ofu_csel
    assert a == MacroArchitecture()


def test_knob_summary_distinguishes_points():
    a = MacroArchitecture()
    b = a.replace(tree_fa_levels=2)
    c = a.replace(ofu_csel=True)
    assert len({a.knob_summary(), b.knob_summary(), c.knob_summary()}) == 3


def test_subtree_inputs():
    spec = MacroSpec(height=64, width=64)
    assert MacroArchitecture(column_split=2).subtree_inputs(spec) == 32
    assert MacroArchitecture(column_split=4).subtree_inputs(spec) == 16


def test_tree_levels_monotone_in_height():
    arch = MacroArchitecture(tree_style="cmp42")
    l32 = arch.tree_levels(MacroSpec(height=32, width=32))
    l256 = arch.tree_levels(MacroSpec(height=256, width=256))
    assert l256 > l32


def test_architecture_space_respects_spec():
    spec = MacroSpec(height=64, width=64, mcr=4)
    space = architecture_space(spec)
    assert space, "space must be non-empty"
    assert all(p.mult_style != "oai22" for p in space)
    spec2 = MacroSpec(height=64, width=64, mcr=2)
    assert any(p.mult_style == "oai22" for p in architecture_space(spec2))


def test_architecture_space_points_all_valid():
    spec = MacroSpec(
        height=16, width=16, input_formats=(INT4,), weight_formats=(INT4,)
    )
    for point in architecture_space(spec):
        point.validate_against(spec)


def test_default_architecture_helper():
    spec = MacroSpec()
    assert default_architecture(spec) == MacroArchitecture()
