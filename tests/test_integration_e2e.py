"""End-to-end integration: the complete pipeline on realistic specs,
including the post-layout escalation loop and artifact coherence."""

import pytest

from repro import SynDCIM
from repro.rtl.verilog import count_instances
from repro.spec import FP8, INT4, INT8, MacroSpec


@pytest.fixture(scope="module")
def compiled_32(scl):
    spec = MacroSpec(
        height=32,
        width=32,
        mcr=2,
        input_formats=(INT4, FP8),
        weight_formats=(INT4, FP8),
        mac_frequency_mhz=700.0,
    )
    return SynDCIM(scl=scl).compile(spec)


class TestPipelineCoherence:
    def test_selected_architecture_is_implemented(self, compiled_32):
        impl = compiled_32.implementation
        # The escalation loop may tighten the architecture but only via
        # legal fix moves; the result must still validate and meet spec.
        impl.arch.validate_against(compiled_32.spec)
        assert impl.timing.met
        assert impl.max_frequency_mhz >= compiled_32.spec.mac_frequency_mhz

    def test_verilog_matches_netlist(self, compiled_32):
        impl = compiled_32.implementation
        v = impl.verilog()
        assert count_instances(v) == impl.netlist.leaf_count()

    def test_gds_matches_placement(self, compiled_32):
        from repro.layout.gds import read_gds_json

        impl = compiled_32.implementation
        back = read_gds_json(impl.gds())
        assert len(back["instances"]) == len(impl.placement.cells)
        outline = back["header"]["outline"]
        assert outline[2] == pytest.approx(impl.placement.width_um)

    def test_power_at_spec_frequency(self, compiled_32):
        impl = compiled_32.implementation
        assert impl.power.frequency_mhz == pytest.approx(
            compiled_32.spec.mac_frequency_mhz
        )
        assert impl.power.total_mw > 0

    def test_congestion_routable(self, compiled_32):
        assert compiled_32.implementation.routing.congestion < 1.0

    def test_hold_clean_post_layout(self, compiled_32, library):
        from repro.sta.analysis import analyze_hold

        impl = compiled_32.implementation
        report = analyze_hold(
            impl.netlist, library, impl.routing.wire_load_fn()
        )
        assert report.met

    def test_functional_model_agrees_with_selected_arch(self, compiled_32):
        """The behavioural model accepts and runs the selected
        architecture (sanity that search outputs are simulatable)."""
        import numpy as np
        from repro.sim.functional import DCIMMacroModel

        spec = compiled_32.spec
        model = DCIMMacroModel(spec, compiled_32.selected.arch)
        rng = np.random.default_rng(0)
        model.set_weights_int(
            0, rng.integers(-8, 8, size=(spec.height, model.n_groups)), INT4
        )
        x = [int(v) for v in rng.integers(-16, 16, size=spec.height)]
        assert model.mac_cycles(x) == model.mac_ideal(x)


class TestEscalationLoop:
    def test_escalation_repairs_post_layout_miss(self, scl, library):
        """Force a post-layout miss by choosing a frontier point at the
        optimistic end, then confirm compile() still delivers a met
        implementation via fix escalation."""
        spec = MacroSpec(
            height=64,
            width=64,
            mcr=2,
            input_formats=(INT4, INT8),
            weight_formats=(INT4, INT8),
            mac_frequency_mhz=800.0,
        )
        result = SynDCIM(scl=scl).compile(spec)
        impl = result.implementation
        assert impl.timing.met
        # If escalation ran, the implemented arch differs from the
        # selected one only through fix-move deltas (never a style
        # regression like dropping carry reorder).
        assert impl.arch.carry_reorder or not result.selected.arch.carry_reorder
