#!/usr/bin/env python3
"""Design-space exploration driven by the batch engine.

Expands a (height, frequency) grid with the sweep grammar, pushes it
through :class:`repro.batch.BatchCompiler` — deduplicated, cached under
``~/.cache/repro`` (so the second run is instant), parallel when
``--jobs`` > 1 — and renders the aggregate Pareto/scaling report.  The
sweep runs search-only (``implement=False``), so even a cold run over
dozens of points finishes in seconds; pass ``--implement`` for full
layouts.  A template-compiler comparison and frontier hypervolume close
the loop against the AutoDCIM baseline.

Run:  python examples/design_space_exploration.py [--jobs N] [--implement]
"""

import argparse

from repro.baselines.autodcim import AutoDCIMCompiler
from repro.batch import BatchCompiler
from repro.batch.summarize import summarize
from repro.batch.sweep import expand_grid, grid_summary, parse_axis, parse_format_sets
from repro.compiler.report import format_pareto_ascii, format_table
from repro.scl.library import default_scl
from repro.search.pareto import hypervolume_2d
from repro.spec import INT4, INT8, MacroSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--implement", action="store_true",
        help="full layouts instead of search-only estimates",
    )
    args = parser.parse_args()

    # --- the sweep: array sizes x frequency targets ------------------------
    specs = expand_grid(
        heights=parse_axis(["32:128:x2"]),
        widths=[64],
        mcrs=[2],
        format_sets=parse_format_sets(["INT4,INT8"]),
        frequencies=parse_axis(["300", "500:1000:+250"], integer=False),
        vdds=[0.9],
    )
    print(f"sweep: {grid_summary(specs)}")

    engine = BatchCompiler(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=lambda done, total, rec: print(
            f"  [{done}/{total}] {rec['spec_summary']} — {rec['status']}"
            f" ({'cached' if rec.get('cached') else 'compiled'})"
        ),
    )
    result = engine.compile_specs(specs, implement=args.implement)
    print(result.stats.cache_line())
    print()
    print(summarize(result.records))

    # --- template-compiler comparison at the paper's operating point -------
    scl = default_scl()
    template = AutoDCIMCompiler(scl)
    rows = []
    for record in result.records:
        spec = MacroSpec.from_dict(record["spec"])
        if spec.height != 64:
            continue
        auto = template.compile(spec)
        selected = record.get("selected")
        rows.append(
            [
                f"{spec.mac_frequency_mhz:.0f} MHz",
                "yes" if record["status"] == "ok" else "no",
                "yes" if auto.meets_timing else "no",
                round(selected["power_mw"], 1) if selected else "-",
            ]
        )
    print("\n64x64 feasibility vs the AutoDCIM template:")
    print(
        format_table(
            ["target", "SynDCIM ok", "template ok", "SynDCIM mW"], rows
        )
    )

    # --- frontier visualization + hypervolume @700 MHz ---------------------
    from repro.search.algorithm import MSOSearcher

    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=700.0,
    )
    res = MSOSearcher(scl).search(spec)
    pts = [(e.area_um2 / 1e6, e.power_mw, 0) for e in res.candidates]
    front = [(e.area_um2 / 1e6, e.power_mw, 1) for e in res.frontier]
    print("\ncandidates (o) and frontier (*) @700 MHz:")
    print(format_pareto_ascii(pts + front, "area [mm^2]", "power [mW]"))
    ref = (
        max(p[0] for p in pts) * 1.1,
        max(p[1] for p in pts) * 1.1,
    )
    hv = hypervolume_2d([(p[0], p[1]) for p in front], ref)
    print(f"\nfrontier hypervolume vs reference {ref}: {hv:.3f}")


if __name__ == "__main__":
    main()
