#!/usr/bin/env python3
"""Design-space exploration: sweep specs, compare searched frontiers
against the template-compiler baseline, and visualize trade-offs.

Uses only the search layer (no layouts), so a full sweep over array
sizes, MCR values and frequency targets finishes in seconds — the
workflow an architect would run before committing to implementation.

Run:  python examples/design_space_exploration.py
"""

from repro.baselines.autodcim import AutoDCIMCompiler
from repro.compiler.report import format_pareto_ascii, format_table
from repro.scl.library import default_scl
from repro.search.algorithm import MSOSearcher
from repro.search.pareto import hypervolume_2d
from repro.spec import INT4, INT8, MacroSpec


def main() -> None:
    scl = default_scl()
    searcher = MSOSearcher(scl)
    template = AutoDCIMCompiler(scl)

    # --- sweep 1: frequency vs feasibility -----------------------------------
    rows = []
    for freq in (300, 500, 700, 800, 900, 1000):
        spec = MacroSpec(
            height=64,
            width=64,
            mcr=2,
            input_formats=(INT4, INT8),
            weight_formats=(INT4, INT8),
            mac_frequency_mhz=float(freq),
        )
        res = searcher.search(spec)
        auto = template.compile(spec)
        best = min((e.power_mw for e in res.frontier), default=None)
        rows.append(
            [
                freq,
                "yes" if res.frontier else "no",
                "yes" if auto.meets_timing else "no",
                round(best, 1) if best else "-",
                len(res.frontier),
            ]
        )
    print("frequency sweep (64x64, MCR=2):")
    print(
        format_table(
            ["MHz", "SynDCIM ok", "template ok", "best mW", "frontier"],
            rows,
        )
    )

    # --- sweep 2: array size at fixed 800 MHz ------------------------------
    rows = []
    for dim in (32, 64, 128):
        spec = MacroSpec(
            height=dim,
            width=dim,
            mcr=2,
            input_formats=(INT4, INT8),
            weight_formats=(INT4, INT8),
            mac_frequency_mhz=800.0,
        )
        res = searcher.search(spec)
        if not res.frontier:
            rows.append([f"{dim}x{dim}", "infeasible", "-", "-"])
            continue
        pick = res.select()
        rows.append(
            [
                f"{dim}x{dim}",
                round(pick.power_mw, 1),
                round(pick.area_um2 / 1e6, 4),
                round(pick.tops_per_watt, 2),
            ]
        )
    print("\narray-size sweep @800 MHz:")
    print(format_table(["macro", "power mW", "area mm^2", "TOPS/W"], rows))

    # --- frontier visualization + hypervolume --------------------------------
    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=700.0,
    )
    res = searcher.search(spec)
    pts = [(e.area_um2 / 1e6, e.power_mw, 0) for e in res.candidates]
    front = [(e.area_um2 / 1e6, e.power_mw, 1) for e in res.frontier]
    print("\ncandidates (o) and frontier (*) @700 MHz:")
    print(format_pareto_ascii(pts + front, "area [mm^2]", "power [mW]"))
    ref = (
        max(p[0] for p in pts) * 1.1,
        max(p[1] for p in pts) * 1.1,
    )
    hv = hypervolume_2d([(p[0], p[1]) for p in front], ref)
    print(f"\nfrontier hypervolume vs reference {ref}: {hv:.3f}")


if __name__ == "__main__":
    main()
