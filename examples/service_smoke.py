"""Boot the compile service as a subprocess and smoke every route.

This is the end-to-end deployment check CI runs (and the shortest
honest demo of the service): start ``python -m repro serve`` on an
ephemeral port, talk to it only through
:class:`repro.service.client.ServiceClient` — submit a job, poll it
terminal, fetch the cached record by content hash, run a small sweep,
cross-check ``/v1/stats`` — then shut the server down.

Run it from a checkout::

    PYTHONPATH=src python examples/service_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import CompileOptions, ServiceClient  # noqa: E402


def start_server(cache_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on port 0 and scrape the bound URL from
    its first stdout line (``serving on http://...``)."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "2", "-j", "1",
            "--cache-dir", cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = re.search(r"serving on (http://\S+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server did not announce a URL: {line!r}")
    return proc, match.group(1)


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir:
        proc, url = start_server(cache_dir)
        try:
            client = ServiceClient(url)

            health = client.health()
            assert health["ok"], health
            print(f"server {url} healthy (version {health['version']})")

            options = CompileOptions(implement=False)
            spec = {"height": 8, "width": 8, "mcr": 1,
                    "mac_frequency_mhz": 400.0, "formats": ["INT4"]}

            snap = client.submit(spec, options=options)
            final = client.wait(snap["id"], timeout=300)
            assert final["status"] == "ok", final
            print(f"job {snap['id']}: {final['status']}")

            record = client.result(snap["key"])
            assert record is not None and record["status"] == "ok"
            print(f"result {snap['key'][:12]}…: cache hit")

            # Resubmitting the identical spec must not recompile.
            again = client.submit(spec, options=options)
            assert again["status"] == "ok" and again["cached"], again
            print("resubmit: served from the store")

            sweep = client.submit_sweep(
                {"height": ["8"], "width": ["8", "16"], "mcr": ["1"],
                 "frequency": ["400"], "formats": ["INT4"]},
                options=options,
            )
            done = client.wait_sweep(sweep["id"], timeout=600)
            assert done["counts"].get("ok") == sweep["points"], done
            print(f"sweep {sweep['id']}: {done['counts']}")

            stats = client.stats()
            # 8x8 compiled once ever — the single submit and the sweep
            # point share one content hash.
            assert stats["compiled"] == 2, stats
            print(f"stats: compiled {stats['compiled']}, "
                  f"cache hits {stats['cache_hits']}, "
                  f"store {stats['store']['entries']} entries")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
