#!/usr/bin/env python3
"""Edge-vision scenario: an energy-first INT4/INT8 macro running a real
quantized convolution workload.

The paper motivates DCIM with divergent application needs — wearable
and mobile vision accelerators want maximum TOPS/W at moderate
frequency.  This example:

1. compiles an energy-biased 64x64 macro at 500 MHz;
2. quantizes a small convolution layer (im2col'd to matrix-vector
   products) to INT8 and loads it into the behavioural macro model with
   the *same* weight-packing the silicon would use;
3. streams an input feature map through the bit-serial MAC datapath and
   verifies the outputs against a NumPy reference, exactly;
4. reports the achieved efficiency under the measured activity.

Run:  python examples/edge_vision_macro.py
"""

import numpy as np

from repro import MacroSpec, SynDCIM
from repro.sim.functional import DCIMMacroModel
from repro.spec import INT4, INT8, PPAWeights


def quantize_int8(x: np.ndarray, scale: float) -> np.ndarray:
    return np.clip(np.round(x / scale), -128, 127).astype(np.int64)


def main() -> None:
    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8),
        weight_formats=(INT4, INT8),
        mac_frequency_mhz=500.0,
        ppa=PPAWeights(power=4.0, performance=1.0, area=1.0),
    )
    compiler = SynDCIM()
    compiled = compiler.compile(spec, input_sparsity=0.4)
    impl = compiled.implementation
    assert impl is not None
    print(f"energy-first macro: {compiled.selected.arch.knob_summary()}")
    print(impl.report())

    # --- a 3x3x... conv layer as matrix-vector products -------------------
    rng = np.random.default_rng(0)
    k = 64  # im2col contraction depth = macro height
    n_out = spec.width // spec.max_weight_bits  # output words per pass
    conv_w = rng.normal(0, 0.4, size=(k, n_out))
    w_scale = float(np.abs(conv_w).max() / 100.0)
    w_q = quantize_int8(conv_w, w_scale)

    model = DCIMMacroModel(spec, compiled.selected.arch)
    model.set_weights_int(0, w_q, INT8)

    n_pixels = 16
    ok = 0
    relu_zeros = 0
    for _ in range(n_pixels):
        patch = rng.normal(0, 0.5, size=k)
        x_scale = float(np.abs(patch).max() / 120.0 + 1e-9)
        x_q = quantize_int8(patch, x_scale)
        got = model.mac_cycles([int(v) for v in x_q])
        ref = (x_q @ w_q).tolist()
        assert got == ref, "bit-serial datapath must match NumPy exactly"
        ok += 1
        relu_zeros += sum(1 for v in got if v <= 0)
    print(
        f"\nconvolution check: {ok}/{n_pixels} pixels bit-exact "
        f"({relu_zeros} post-ReLU zeros -> natural sparsity for the "
        f"next layer)"
    )

    # --- efficiency under the workload's activity --------------------------
    e_cycle = impl.power.energy_per_cycle_pj
    k_bits = spec.input_width
    macs_per_pass = spec.height * n_out
    energy_per_pass_pj = e_cycle * k_bits
    pj_per_mac = energy_per_pass_pj / macs_per_pass
    tops_w = 2.0 / (pj_per_mac * 1e-12) / 1e12
    print(
        f"\nworkload efficiency: {pj_per_mac:.3f} pJ/MAC "
        f"-> {tops_w:.2f} TOPS/W (INT8, 40% input sparsity, "
        f"{impl.power.frequency_mhz:.0f} MHz)"
    )


if __name__ == "__main__":
    main()
