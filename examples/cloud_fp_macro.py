#!/usr/bin/env python3
"""Cloud/LLM scenario: a throughput-first macro with FP8 activations.

Language-model serving wants raw frequency and FP numerics.  This
example compiles a performance-biased macro supporting FP8 (E4M3)
activations and weights at an aggressive clock, then runs an FP8
attention-style projection through the behavioural model, comparing
against float references to show the alignment-unit quantization
behaviour end to end.

Run:  python examples/cloud_fp_macro.py
"""

import numpy as np

from repro import MacroSpec, SynDCIM
from repro.sim.functional import DCIMMacroModel
from repro.spec import FP8, INT8, PPAWeights


def main() -> None:
    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT8, FP8),
        weight_formats=(INT8, FP8),
        mac_frequency_mhz=850.0,
        ppa=PPAWeights(power=1.0, performance=4.0, area=1.0),
    )
    compiler = SynDCIM()
    compiled = compiler.compile(spec)
    impl = compiled.implementation
    assert impl is not None
    print(f"throughput-first macro: {compiled.selected.arch.knob_summary()}")
    print(impl.report())
    print(
        f"\npost-layout fmax {impl.max_frequency_mhz:.0f} MHz vs "
        f"target {spec.mac_frequency_mhz:.0f} MHz"
    )

    # --- FP8 projection: y = W x with E4M3 operands -------------------------
    rng = np.random.default_rng(1)
    model = DCIMMacroModel(spec, compiled.selected.arch)
    n_out = model.n_groups
    w = rng.normal(0, 0.35, size=(spec.height, n_out))
    model.set_weights_fp(0, w.tolist(), FP8)

    rel_errors = []
    for _ in range(24):
        x = rng.normal(0, 0.8, size=spec.height)
        got = np.array(model.mac_fp(x, FP8))
        ref = x @ w
        denom = np.maximum(np.abs(ref), 1e-2)
        rel_errors.append(np.abs(got - ref) / denom)
    rel = np.concatenate(rel_errors)
    print(
        f"\nFP8 projection vs float reference over {rel.size} outputs: "
        f"median rel. error {np.median(rel):.3f}, "
        f"p95 {np.quantile(rel, 0.95):.3f}"
    )
    print(
        "  (group alignment shares one exponent across 64 lanes: "
        "operands far below the group max lose mantissa bits — the "
        "documented accuracy cost of alignment-based FP DCIM)"
    )
    assert np.median(rel) < 0.35, "alignment datapath out of spec"

    # --- serving throughput --------------------------------------------------
    k = FP8.serial_bits
    vectors_per_s = impl.max_frequency_mhz * 1e6 / k
    gmacs = vectors_per_s * spec.height * n_out / 1e9
    print(
        f"throughput: {vectors_per_s / 1e6:.1f} M input vectors/s "
        f"({gmacs:.1f} GMAC/s FP8) from one macro"
    )


if __name__ == "__main__":
    main()
