#!/usr/bin/env python3
"""MCR double buffering: simultaneous MAC and weight update.

The memory-compute ratio exists for exactly this (paper Section II.A):
extra SRAM banks let the BL drivers refill weights while the array
computes from another bank, hiding the update latency entirely.  This
example runs a layer-by-layer workload on an MCR=2 macro:

* bank A serves MACs for layer ``i`` while bank B is being written with
  layer ``i+1``'s weights, one row per serial cycle;
* results are verified bit-exactly against per-layer references;
* the effective throughput is compared with an MCR=1 macro that must
  stall for whole-array writes between layers.

Run:  python examples/weight_double_buffering.py
"""

import numpy as np

from repro import MacroSpec
from repro.scl.library import default_scl
from repro.search.estimate import estimate_macro
from repro.arch import MacroArchitecture
from repro.sim.functional import DCIMMacroModel
from repro.spec import INT4


def main() -> None:
    spec = MacroSpec(
        height=16,
        width=16,
        mcr=2,
        input_formats=(INT4,),
        weight_formats=(INT4,),
        mac_frequency_mhz=500.0,
    )
    model = DCIMMacroModel(spec)
    rng = np.random.default_rng(7)

    n_layers = 6
    layers = [
        rng.integers(-8, 8, size=(spec.height, model.n_groups))
        for _ in range(n_layers)
    ]
    model.set_weights_int(0, layers[0], INT4)

    k = spec.input_width
    rows_per_mac = spec.height  # rows writable during one serial MAC
    checked = 0
    for layer in range(n_layers - 1):
        active, standby = layer % 2, (layer + 1) % 2
        # Pre-pack next layer's bits the way the BL path would see them.
        staging = DCIMMacroModel(spec)
        staging.set_weights_int(0, layers[layer + 1], INT4)
        next_bits = staging.weight_bits(0)

        write_row = 0
        vectors = 8
        for v in range(vectors):
            x = [int(q) for q in rng.integers(-8, 8, size=spec.height)]
            # Schedule up to k row-writes into the standby bank during
            # this MAC's serial cycles.
            updates = {}
            for t in range(k):
                if write_row < spec.height:
                    updates[t] = (
                        standby,
                        write_row,
                        next_bits[write_row].tolist(),
                    )
                    write_row += 1
            got = model.mac_with_updates(x, bank=active, updates=updates)
            expect = (np.array(x) @ layers[layer]).tolist()
            assert got == expect, "update traffic disturbed the MAC"
            checked += 1
        assert write_row >= spec.height, "bank refill did not finish"
        model_bits = model.weight_bits(standby)
        assert (model_bits == next_bits).all()
        # swap: next layer's MACs run from the freshly written bank

    print(
        f"double buffering: {checked} MACs bit-exact while refilling "
        f"{n_layers - 1} layers in the standby bank"
    )

    # --- throughput comparison vs MCR=1 -----------------------------------
    scl = default_scl()
    est2 = estimate_macro(spec, MacroArchitecture(), scl)
    spec1 = spec.replace(mcr=1)
    est1 = estimate_macro(spec1, MacroArchitecture(), scl)
    macs_per_layer = 64 * spec.height * model.n_groups
    cycles_mac = 64 * k
    cycles_write = spec.height  # one row per cycle, stalls MCR=1 only
    t2 = cycles_mac  # writes hidden
    t1 = cycles_mac + cycles_write
    print(
        f"\nper-layer cycles: MCR=2 {t2} (writes hidden) vs "
        f"MCR=1 {t1} (+{100 * (t1 - t2) / t2:.0f}% stall)"
    )
    print(
        f"area cost of the second bank: "
        f"{est2.area_um2 / est1.area_um2:.2f}x "
        f"({est1.area_um2 / 1e6:.4f} -> {est2.area_um2 / 1e6:.4f} mm^2)"
    )
    del macs_per_layer


if __name__ == "__main__":
    main()
