#!/usr/bin/env python3
"""Quickstart: compile a DCIM macro from a performance specification.

This walks the full SynDCIM pipeline on the paper's headline
configuration — a 64x64, MCR=2 macro supporting INT4/8 and FP4/8 at
800 MHz — and prints every artifact stage: the searched Pareto frontier,
the selected architecture, and the post-layout signoff numbers.

Run:  python examples/quickstart.py
"""

from repro import MacroSpec, SynDCIM
from repro.spec import FP4, FP8, INT4, INT8, PPAWeights


def main() -> None:
    spec = MacroSpec(
        height=64,
        width=64,
        mcr=2,
        input_formats=(INT4, INT8, FP4, FP8),
        weight_formats=(INT4, INT8, FP4, FP8),
        mac_frequency_mhz=800.0,
        vdd=0.9,
        ppa=PPAWeights(power=2.0, performance=1.0, area=1.0),
    )
    print(f"specification: {spec.describe()}\n")

    compiler = SynDCIM()

    # Phase 1: multi-spec-oriented search (milliseconds — pure LUT math).
    result = compiler.search(spec)
    print(result.describe())
    print(f"\nfixes applied during repair: {result.fix_counts}\n")

    # Phase 2: selection + implementation (synthesis, SDP place & route,
    # DRC/LVS, post-layout STA and power).
    compiled = compiler.compile(spec)
    impl = compiled.implementation
    assert impl is not None
    print(impl.report())

    # Phase 3: export artifacts.
    verilog = impl.verilog()
    gds = impl.gds()
    print(
        f"\nartifacts: {len(verilog.splitlines())} lines of Verilog, "
        f"{len(gds.splitlines())} GDS records"
    )
    print("\nfirst Verilog lines:")
    for line in verilog.splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
