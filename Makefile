# Development targets (see README.md "Development").
#
# Works from a plain checkout (PYTHONPATH=src) or an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test chaos bench perf perf-check perf-smoke serve lint install

test:  ## tier-1 suite: unit tests + benchmark reproductions
	$(PYTHON) -m pytest -x -q

chaos:  ## fault-injection suite: watchdog, retry, resume, quarantine
	$(PYTHON) -m pytest tests/test_resilience.py -q

bench:  ## benchmark suite only, with timing columns
	$(PYTHON) -m pytest benchmarks -q --benchmark-columns=mean,stddev,ops

perf:  ## hot-path perf suite; appends to benchmarks/results/BENCH_perf.json
	$(PYTHON) benchmarks/perf/run_perf.py

perf-check:  ## CI gate: latest perf entry vs checked-in baseline (>2x fails)
	$(PYTHON) benchmarks/perf/check_regression.py

perf-smoke:  ## CI guard: warm SCL load + single search under ceilings
	$(PYTHON) -m pytest benchmarks/perf -q

SERVE_ARGS ?= --port 8841 --workers 2 -j 2

serve:  ## run the compile service (docs/service.md); override SERVE_ARGS
	$(PYTHON) -m repro serve $(SERVE_ARGS)

lint:  ## ruff, if installed (CI always runs it)
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; pip install ruff (or pip install -e '.[dev]')"; \
	fi

install:  ## editable install with dev extras
	$(PYTHON) -m pip install -e '.[dev]'
